(* Superblock engine equivalence tests.

   The block engine ([Exec.Blocks]) is a pure host-speed optimisation: it
   must produce bit-identical architectural state, simulated cycle counts
   and interrupt latencies to the reference per-step interpreter
   ([Exec.Stepper]).  These tests run the same programs under both
   engines and compare everything observable: cycles (total and
   guest/monitor split), instruction counts, registers, PSL, console
   output and run outcome.

   They also pin down the invalidation rules: self-modifying code must
   take effect at the same instruction boundary under both engines, even
   when the store targets a later instruction of the *same* block, and a
   store into the second page of a page-straddling instruction must
   invalidate its cached decode. *)

open Vax_arch
open Vax_cpu
open Vax_workloads
module Asm = Vax_asm.Asm

let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Workload equivalence: every catalog workload, bare and under the VMM *)

type summary = {
  outcome : string;
  total : int;
  guest : int;
  monitor : int;
  instrs : int;
  console : string;
  regs : int list;
  psl : int;
}

let summarize (m : Runner.measurement) =
  let st = m.Runner.machine.Vax_dev.Machine.cpu in
  {
    outcome = Format.asprintf "%a" Vax_dev.Machine.pp_outcome m.Runner.outcome;
    total = m.Runner.total_cycles;
    guest = m.Runner.guest_cycles;
    monitor = m.Runner.monitor_cycles;
    instrs = m.Runner.instructions;
    console = m.Runner.console;
    regs = List.init 16 (State.reg st);
    psl = st.State.psl;
  }

let check_summary name a b =
  Alcotest.(check string) (name ^ ": outcome") a.outcome b.outcome;
  check_int (name ^ ": total cycles") a.total b.total;
  check_int (name ^ ": guest cycles") a.guest b.guest;
  check_int (name ^ ": monitor cycles") a.monitor b.monitor;
  check_int (name ^ ": instructions") a.instrs b.instrs;
  Alcotest.(check string) (name ^ ": console") a.console b.console;
  Alcotest.(check (list int)) (name ^ ": registers") a.regs b.regs;
  check_int (name ^ ": psl") a.psl b.psl

let test_bare_workloads () =
  List.iter
    (fun w ->
      let built = Catalog.build w in
      let s = summarize (Runner.run_bare ~engine:Exec.Stepper built) in
      let b = summarize (Runner.run_bare ~engine:Exec.Blocks built) in
      check_summary ("bare " ^ w) s b)
    Catalog.names

let test_vm_workloads () =
  List.iter
    (fun w ->
      let built = Catalog.build w in
      let s = summarize (Runner.run_vm ~engine:Exec.Stepper built) in
      let b = summarize (Runner.run_vm ~engine:Exec.Blocks built) in
      check_summary ("vm " ^ w) s b)
    Catalog.names

(* ------------------------------------------------------------------ *)
(* Directed programs on the bare CPU facade *)

let boot ~engine ?(origin = 0x1000) f =
  let cpu = Cpu.create ~engine () in
  let a = Asm.create ~origin in
  f a;
  let img = Asm.assemble a in
  Cpu.load cpu img.Asm.image_origin img.Asm.code;
  State.set_pc cpu.Cpu.state origin;
  State.set_sp cpu.Cpu.state 0x2000;
  (cpu, img)

let cpu_summary (cpu : Cpu.t) =
  ( List.init 16 (State.reg cpu.Cpu.state),
    cpu.Cpu.state.State.psl,
    Cycles.now cpu.Cpu.clock,
    cpu.Cpu.state.State.instructions )

let both_engines f =
  let s = f Exec.Stepper and b = f Exec.Blocks in
  let rs, ps, cs, is = s and rb, pb, cb, ib = b in
  Alcotest.(check (list int)) "registers" rs rb;
  check_int "psl" ps pb;
  check_int "cycles" cs cb;
  check_int "instructions" is ib;
  s

let opcode_byte op =
  match Opcode.encoding op with [ b ] -> b | _ -> assert false

(* An interrupt posted mid-block must be delivered at the same
   instruction boundary — same cycle, same instruction count — under
   both engines, for several different boundaries within the block. *)
let interrupt_program a =
  Asm.ins a Opcode.Mtpr [ Asm.Imm 0x8000; Asm.Imm (Ipr.to_int Ipr.SCBB) ];
  Asm.ins a Opcode.Moval [ Asm.Abs_label "handler"; Asm.R 0 ];
  Asm.ins a Opcode.Movl [ Asm.R 0; Asm.Abs (0x8000 + Scb.interval_timer) ];
  Asm.ins a Opcode.Mtpr [ Asm.Imm 0; Asm.Imm (Ipr.to_int Ipr.IPL) ];
  Asm.ins a Opcode.Movl [ Asm.Imm 40; Asm.R 2 ];
  Asm.label a "loop";
  (* a straight-line body long enough to span several block slots *)
  for _ = 1 to 6 do
    Asm.ins a Opcode.Incl [ Asm.R 1 ]
  done;
  Asm.ins a Opcode.Addl2 [ Asm.Imm 3; Asm.R 1 ];
  Asm.ins a Opcode.Sobgtr [ Asm.R 2; Asm.Branch "loop" ];
  Asm.ins a Opcode.Halt [];
  Asm.align a 4;
  Asm.label a "handler";
  Asm.ins a Opcode.Incl [ Asm.R 10 ];
  Asm.ins a Opcode.Rei []

let run_with_interrupt engine k =
  let cpu, _ = boot ~engine interrupt_program in
  let st = cpu.Cpu.state in
  (* step exactly [k] instructions, post a timer interrupt, then run to
     the HALT; record the cycle and instruction count at delivery *)
  for _ = 1 to k do
    ignore (Cpu.step cpu)
  done;
  State.post_interrupt st ~ipl:22 ~vector:Scb.interval_timer;
  let delivery = ref (-1, -1) in
  let rec go n =
    if n = 0 then Alcotest.fail "no halt";
    if st.State.interrupts_taken > 0 && !delivery = (-1, -1) then
      delivery := (Cycles.now cpu.Cpu.clock, st.State.instructions);
    match Cpu.step cpu with Exec.Machine_halted -> () | _ -> go (n - 1)
  in
  go 5000;
  check_int "interrupt delivered once" 1 st.State.interrupts_taken;
  check_int "handler ran" 1 (State.reg st 10);
  (cpu_summary cpu, !delivery)

let test_interrupt_mid_block () =
  (* k values chosen to land at different offsets inside the loop body's
     block, including right after the block is first built *)
  List.iter
    (fun k ->
      let (ss, sd) = run_with_interrupt Exec.Stepper k in
      let (bs, bd) = run_with_interrupt Exec.Blocks k in
      let rs, ps, cs, is = ss and rb, pb, cb, ib = bs in
      Alcotest.(check (list int))
        (Printf.sprintf "k=%d registers" k)
        rs rb;
      check_int (Printf.sprintf "k=%d psl" k) ps pb;
      check_int (Printf.sprintf "k=%d final cycles" k) cs cb;
      check_int (Printf.sprintf "k=%d instructions" k) is ib;
      let dc_s, di_s = sd and dc_b, di_b = bd in
      check_int (Printf.sprintf "k=%d delivery cycle" k) dc_s dc_b;
      check_int (Printf.sprintf "k=%d delivery instruction" k) di_s di_b)
    [ 5; 9; 13; 17; 23; 42 ]

(* Self-modifying code where the store targets a *later* instruction of
   the same straight-line block: the second iteration enters the block,
   the store bumps the page generation, and the patched slot must be
   re-decoded before it runs. *)
let test_smc_inside_block () =
  let incl = opcode_byte Opcode.Incl and decl = opcode_byte Opcode.Decl in
  let run engine =
    let cpu, _ =
      boot ~engine (fun a ->
          Asm.ins a Opcode.Movl [ Asm.Imm 2; Asm.R 2 ];
          Asm.ins a Opcode.Movb [ Asm.Imm incl; Asm.R 3 ];
          Asm.label a "loop";
          (* slot k: patch the opcode of slot k+1 *)
          Asm.ins a Opcode.Movb [ Asm.R 3; Asm.Abs_label "patch" ];
          Asm.label a "patch";
          Asm.ins a Opcode.Incl [ Asm.R 0 ];
          Asm.ins a Opcode.Movb [ Asm.Imm decl; Asm.R 3 ];
          Asm.ins a Opcode.Sobgtr [ Asm.R 2; Asm.Branch "loop" ];
          Asm.ins a Opcode.Halt [])
    in
    (match Cpu.run cpu ~max_instructions:1000 () with
    | Exec.Machine_halted -> ()
    | _ -> Alcotest.fail "no halt");
    cpu_summary cpu
  in
  let (regs, _, _, _) = both_engines run in
  (* iteration 1 executes INCL, iteration 2 the patched DECL: a stale
     cached block would leave r0 = 2 instead *)
  check_int "patched slot re-decoded" 0 (List.nth regs 0)

(* The store lives in one block and patches an instruction of another,
   already-built block (a subroutine executed before and after). *)
let test_smc_across_blocks () =
  let decl = opcode_byte Opcode.Decl in
  let run engine =
    let cpu, _ =
      boot ~engine (fun a ->
          Asm.ins a Opcode.Bsbb [ Asm.Branch "sub" ];
          Asm.ins a Opcode.Bsbb [ Asm.Branch "sub" ];
          Asm.ins a Opcode.Movb [ Asm.Imm decl; Asm.Abs_label "subpatch" ];
          Asm.ins a Opcode.Bsbb [ Asm.Branch "sub" ];
          Asm.ins a Opcode.Halt [];
          Asm.label a "sub";
          Asm.label a "subpatch";
          Asm.ins a Opcode.Incl [ Asm.R 0 ];
          Asm.ins a Opcode.Rsb [])
    in
    (match Cpu.run cpu ~max_instructions:1000 () with
    | Exec.Machine_halted -> ()
    | _ -> Alcotest.fail "no halt");
    cpu_summary cpu
  in
  let (regs, _, _, _) = both_engines run in
  (* two INCLs then the patched DECL: 1 + 1 - 1 *)
  check_int "patched subroutine re-decoded" 1 (List.nth regs 0)

(* A page-straddling instruction whose second page is stored into must
   be re-decoded: the decode cache records both pages' generations. *)
let test_straddler_invalidation () =
  let page = Addr.page_size in
  let run engine =
    let origin = (2 * page) - 64 in
    let cpu, img =
      boot ~engine ~origin (fun a ->
          Asm.ins a Opcode.Bsbb [ Asm.Branch "strad" ];
          Asm.ins a Opcode.Movl [ Asm.R 0; Asm.R 5 ];
          (* patch the third immediate byte, which lives on the second
             page of the straddling instruction *)
          Asm.ins a Opcode.Movb [ Asm.Imm 0xAA; Asm.Abs (((2 * page) - 4) + 4) ];
          Asm.ins a Opcode.Bsbb [ Asm.Branch "strad" ];
          Asm.ins a Opcode.Halt [];
          Asm.space a ((2 * page) - 4 - Asm.here a);
          Asm.label a "strad";
          (* 7 bytes: opcode, 0x8F, 4 immediate bytes, register dst —
             starts 4 bytes before the page boundary, so the last two
             immediate bytes and the dst specifier are on the next page *)
          Asm.ins a Opcode.Movl [ Asm.Imm 0x11223344; Asm.R 0 ];
          Asm.ins a Opcode.Rsb [])
    in
    check_int "straddler placed at page boundary - 4"
      ((2 * page) - 4)
      (Asm.lookup img "strad");
    (match Cpu.run cpu ~max_instructions:1000 () with
    | Exec.Machine_halted -> ()
    | _ -> Alcotest.fail "no halt");
    cpu_summary cpu
  in
  let (regs, _, _, _) = both_engines run in
  check_int "first read" 0x11223344 (List.nth regs 5);
  (* a stale straddler decode would reproduce 0x11223344 *)
  check_int "second read sees patched byte" 0x11AA3344 (List.nth regs 0)

(* The block cache actually engages on these runs: hits and built blocks
   are non-zero under the block engine. *)
let test_block_cache_engages () =
  let built = Catalog.build "mix" in
  let m = Runner.run_bare ~engine:Exec.Blocks built in
  let bc = m.Runner.machine.Vax_dev.Machine.bcache in
  Alcotest.(check bool) "blocks built" true (Block_cache.built bc > 0);
  Alcotest.(check bool) "block hits" true (Block_cache.hits bc > 0);
  Alcotest.(check bool)
    "hits dominate misses" true
    (Block_cache.hits bc > Block_cache.misses bc)

let () =
  Alcotest.run "blocks"
    [
      ( "equivalence",
        [
          Alcotest.test_case "bare workloads: blocks = stepper" `Quick
            test_bare_workloads;
          Alcotest.test_case "vm workloads: blocks = stepper" `Quick
            test_vm_workloads;
          Alcotest.test_case "interrupt mid-block: same boundary" `Quick
            test_interrupt_mid_block;
        ] );
      ( "invalidation",
        [
          Alcotest.test_case "smc inside a block" `Quick test_smc_inside_block;
          Alcotest.test_case "smc across blocks" `Quick test_smc_across_blocks;
          Alcotest.test_case "page-straddler second-page store" `Quick
            test_straddler_invalidation;
        ] );
      ( "engagement",
        [
          Alcotest.test_case "block cache engages on workloads" `Quick
            test_block_cache_engages;
        ] );
    ]
