(* Tests for physical memory, the TLB, and the MMU translation algorithm,
   including the two modify-bit policies. *)

open Vax_arch
open Vax_mem

let qtest name gen f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name gen f)

(* --- Phys_mem ------------------------------------------------------- *)

let phys_tests =
  [
    qtest "byte write/read roundtrip"
      (QCheck.pair (QCheck.int_bound (64 * 512 - 1)) (QCheck.int_bound 255))
      (fun (pa, b) ->
        let m = Phys_mem.create ~pages:64 in
        Phys_mem.write_byte m pa b;
        Phys_mem.read_byte m pa = b);
    qtest "long write/read roundtrip (incl. unaligned)"
      (QCheck.pair (QCheck.int_bound (64 * 512 - 5)) (QCheck.map (fun i -> i land 0xFFFF_FFFF) QCheck.int))
      (fun (pa, v) ->
        let m = Phys_mem.create ~pages:64 in
        Phys_mem.write_long m pa v;
        Phys_mem.read_long m pa = v);
    Alcotest.test_case "little endian layout" `Quick (fun () ->
        let m = Phys_mem.create ~pages:1 in
        Phys_mem.write_long m 0 0x0403_0201;
        Alcotest.(check int) "b0" 1 (Phys_mem.read_byte m 0);
        Alcotest.(check int) "b3" 4 (Phys_mem.read_byte m 3));
    Alcotest.test_case "nonexistent memory raises" `Quick (fun () ->
        let m = Phys_mem.create ~pages:1 in
        Alcotest.check_raises "nxm" (Phys_mem.Nonexistent_memory 0x1_0000)
          (fun () -> ignore (Phys_mem.read_byte m 0x1_0000)));
    Alcotest.test_case "io region dispatch" `Quick (fun () ->
        let m = Phys_mem.create ~pages:1 in
        let stored = ref 0 in
        Phys_mem.register_io m
          {
            Phys_mem.io_base = Phys_mem.io_space_base;
            io_size = 512;
            io_read = (fun ~offset ~width:_ -> offset + 0x100);
            io_write = (fun ~offset:_ ~width:_ v -> stored := v);
          };
        Alcotest.(check int) "read" 0x104
          (Phys_mem.read_long m (Phys_mem.io_space_base + 4));
        Phys_mem.write_long m Phys_mem.io_space_base 0x55;
        Alcotest.(check int) "write" 0x55 !stored);
  ]

(* --- MMU setup helper ----------------------------------------------- *)

(* Build a machine with an S-space page table at physical 0x1000 mapping
   [n_pages] S pages with the given protections. *)
let make_mmu ?(policy = Mmu.Hardware_sets_m) ~prots () =
  let phys = Phys_mem.create ~pages:256 in
  let clock = Cycles.create () in
  let mmu = Mmu.create ~policy ~phys ~clock () in
  let spt = 0x1000 in
  List.iteri
    (fun i (valid, prot, pfn) ->
      Phys_mem.write_long phys
        (spt + (4 * i))
        (Pte.make ~valid ~prot ~pfn ()))
    prots;
  Mmu.set_sbr mmu spt;
  Mmu.set_slr mmu (List.length prots);
  Mmu.set_mapen mmu true;
  mmu

let s_va i = 0x8000_0000 + (i * 512)

let ok = function Ok v -> v | Error _ -> Alcotest.fail "unexpected fault"

let expect_fault name r =
  match r with Ok _ -> Alcotest.fail name | Error f -> f

let mmu_tests =
  [
    Alcotest.test_case "identity when MAPEN off" `Quick (fun () ->
        let phys = Phys_mem.create ~pages:16 in
        let clock = Cycles.create () in
        let mmu = Mmu.create ~phys ~clock () in
        Alcotest.(check int) "pa=va" 0x1234
          (ok (Mmu.translate mmu ~mode:Mode.User ~write:true 0x1234)));
    Alcotest.test_case "simple S translation" `Quick (fun () ->
        let mmu = make_mmu ~prots:[ (true, Protection.UR, 7) ] () in
        Alcotest.(check int) "pfn 7" ((7 * 512) + 5)
          (ok (Mmu.translate mmu ~mode:Mode.User ~write:false (s_va 0 + 5))));
    Alcotest.test_case "length violation" `Quick (fun () ->
        let mmu = make_mmu ~prots:[ (true, Protection.UW, 7) ] () in
        match
          expect_fault "beyond SLR"
            (Mmu.translate mmu ~mode:Mode.Kernel ~write:false (s_va 3))
        with
        | Mmu.Access_violation { length_violation = true; _ } -> ()
        | f -> Alcotest.failf "wrong fault %a" Mmu.pp_fault f);
    Alcotest.test_case "protection checked even when invalid" `Quick (fun () ->
        (* the rule the null shadow PTE relies on *)
        let mmu = make_mmu ~prots:[ (false, Protection.KW, 7) ] () in
        (match
           expect_fault "user write to invalid KW page"
             (Mmu.translate mmu ~mode:Mode.User ~write:true (s_va 0))
         with
        | Mmu.Access_violation { length_violation = false; _ } -> ()
        | f -> Alcotest.failf "wrong fault %a" Mmu.pp_fault f);
        (* kernel write to same page: protection passes, TNV delivered *)
        match
          expect_fault "kernel write to invalid page"
            (Mmu.translate mmu ~mode:Mode.Kernel ~write:true (s_va 0))
        with
        | Mmu.Translation_not_valid _ -> ()
        | f -> Alcotest.failf "wrong fault %a" Mmu.pp_fault f);
    Alcotest.test_case "hardware sets modify bit silently" `Quick (fun () ->
        let mmu = make_mmu ~prots:[ (true, Protection.UW, 7) ] () in
        ignore (ok (Mmu.translate mmu ~mode:Mode.User ~write:true (s_va 0)));
        let pte, _ = ok (Mmu.read_pte mmu (s_va 0)) in
        Alcotest.(check bool) "m set" true (Pte.modify pte));
    Alcotest.test_case "modify-fault policy faults instead" `Quick (fun () ->
        let mmu =
          make_mmu ~policy:Mmu.Modify_fault_policy
            ~prots:[ (true, Protection.UW, 7) ]
            ()
        in
        (match
           expect_fault "write to unmodified page"
             (Mmu.translate mmu ~mode:Mode.User ~write:true (s_va 0))
         with
        | Mmu.Modify_fault _ -> ()
        | f -> Alcotest.failf "wrong fault %a" Mmu.pp_fault f);
        (* reads do not modify-fault *)
        ignore (ok (Mmu.translate mmu ~mode:Mode.User ~write:false (s_va 0)));
        (* software sets M, invalidates, write succeeds *)
        let pte, pa = ok (Mmu.read_pte mmu (s_va 0)) in
        Phys_mem.write_long (Mmu.phys mmu) pa (Pte.with_modify pte true);
        Mmu.tbis mmu (s_va 0);
        ignore (ok (Mmu.translate mmu ~mode:Mode.User ~write:true (s_va 0))));
    Alcotest.test_case "process page table in S virtual memory" `Quick
      (fun () ->
        (* S page 0 maps the P0 page table page (pfn 2); P0 page 0 maps
           pfn 9 *)
        let mmu =
          make_mmu ~prots:[ (true, Protection.KW, 2) ] ()
        in
        Phys_mem.write_long (Mmu.phys mmu) (2 * 512)
          (Pte.make ~prot:Protection.UW ~pfn:9 ());
        Mmu.set_p0br mmu 0x8000_0000;
        Mmu.set_p0lr mmu 1;
        Alcotest.(check int) "p0 va 0 -> pfn 9" (9 * 512)
          (ok (Mmu.translate mmu ~mode:Mode.User ~write:false 0));
        (* beyond P0LR *)
        match
          expect_fault "P0 length"
            (Mmu.translate mmu ~mode:Mode.User ~write:false 512)
        with
        | Mmu.Access_violation { length_violation = true; _ } -> ()
        | f -> Alcotest.failf "wrong fault %a" Mmu.pp_fault f);
    Alcotest.test_case "PROBE outcome semantics" `Quick (fun () ->
        let mmu =
          make_mmu
            ~prots:
              [
                (true, Protection.KW, 3);
                (false, Protection.UW, 0) (* a null-style PTE *);
              ]
            ()
        in
        let p1 = ok (Mmu.probe mmu ~mode:Mode.User ~write:false (s_va 0)) in
        Alcotest.(check bool) "user denied" false p1.Mmu.accessible;
        Alcotest.(check bool) "valid" true p1.Mmu.pte_valid;
        let p2 = ok (Mmu.probe mmu ~mode:Mode.Kernel ~write:true (s_va 0)) in
        Alcotest.(check bool) "kernel ok" true p2.Mmu.accessible;
        let p3 = ok (Mmu.probe mmu ~mode:Mode.User ~write:true (s_va 1)) in
        Alcotest.(check bool) "null pte passes protection" true p3.Mmu.accessible;
        Alcotest.(check bool) "but reports invalid" false p3.Mmu.pte_valid;
        (* length violation: inaccessible, no fault *)
        let p4 = ok (Mmu.probe mmu ~mode:Mode.Kernel ~write:false (s_va 9)) in
        Alcotest.(check bool) "beyond length" false p4.Mmu.accessible);
    Alcotest.test_case "TLB caches and invalidates" `Quick (fun () ->
        let mmu = make_mmu ~prots:[ (true, Protection.UW, 7) ] () in
        ignore (ok (Mmu.translate mmu ~mode:Mode.User ~write:false (s_va 0)));
        let w0 = Mmu.walks mmu in
        ignore (ok (Mmu.translate mmu ~mode:Mode.User ~write:false (s_va 0)));
        Alcotest.(check int) "no extra walk on hit" w0 (Mmu.walks mmu);
        Mmu.tbia mmu;
        ignore (ok (Mmu.translate mmu ~mode:Mode.User ~write:false (s_va 0)));
        Alcotest.(check int) "walk after tbia" (w0 + 1) (Mmu.walks mmu));
  ]

(* property: with random small page tables, translation through the TLB
   equals translation with the TLB freshly invalidated. *)
let tlb_consistency =
  qtest "TLB transparent under random access patterns"
    (QCheck.list_of_size (QCheck.Gen.return 40)
       (QCheck.triple (QCheck.int_bound 3) (QCheck.int_bound 5) QCheck.bool))
    (fun ops ->
      let mk () =
        make_mmu
          ~prots:
            [
              (true, Protection.UW, 8);
              (true, Protection.UR, 9);
              (true, Protection.KW, 10);
              (false, Protection.UW, 11);
              (true, Protection.SW, 12);
              (true, Protection.ER, 13);
            ]
          ()
      in
      let a = mk () and b = mk () in
      List.for_all
        (fun (mode, page, write) ->
          let mode = Mode.of_int mode in
          let va = s_va page in
          let ra = Mmu.translate a ~mode ~write va in
          Mmu.tbia b;
          let rb = Mmu.translate b ~mode ~write va in
          ra = rb)
        ops)


let extra_mmu_tests =
  [
    Alcotest.test_case "P1 translation through its own table" `Quick (fun () ->
        (* S page 0 maps the P1 table page (pfn 2); entry for the last P1
           page lives at its top *)
        let mmu = make_mmu ~prots:[ (true, Protection.KW, 2) ] () in
        let last_vpn = (1 lsl 21) - 1 in
        Phys_mem.write_long (Mmu.phys mmu)
          ((2 * 512) + 508)
          (Pte.make ~prot:Protection.UW ~pfn:9 ());
        (* P1BR such that PTE addr of last_vpn = s_va 0 + 508 *)
        Mmu.set_p1br mmu (Vax_arch.Word.sub (s_va 0 + 508) (4 * last_vpn));
        Mmu.set_p1lr mmu last_vpn;
        let va = 0x4000_0000 lor (last_vpn lsl 9) in
        Alcotest.(check int) "maps pfn 9" (9 * 512)
          (ok (Mmu.translate mmu ~mode:Mode.User ~write:false va));
        (* one page below P1LR: length violation *)
        match
          expect_fault "below P1LR"
            (Mmu.translate mmu ~mode:Mode.User ~write:false
               (0x4000_0000 lor ((last_vpn - 1) lsl 9)))
        with
        | Mmu.Access_violation { length_violation = true; _ } -> ()
        | f -> Alcotest.failf "wrong fault %a" Mmu.pp_fault f);
    Alcotest.test_case "page-table fault carries the PT flag" `Quick (fun () ->
        (* P0 table page's own S PTE is invalid *)
        let mmu = make_mmu ~prots:[ (false, Protection.KW, 2) ] () in
        Mmu.set_p0br mmu 0x8000_0000;
        Mmu.set_p0lr mmu 4;
        match
          expect_fault "walk faults"
            (Mmu.translate mmu ~mode:Mode.Kernel ~write:false 0)
        with
        | Mmu.Translation_not_valid { ptbl_ref = true; _ } -> ()
        | f -> Alcotest.failf "wrong fault %a" Mmu.pp_fault f);
    Alcotest.test_case "probe can itself take a page-table fault" `Quick
      (fun () ->
        let mmu = make_mmu ~prots:[ (false, Protection.KW, 2) ] () in
        Mmu.set_p0br mmu 0x8000_0000;
        Mmu.set_p0lr mmu 4;
        match expect_fault "probe" (Mmu.probe mmu ~mode:Mode.Kernel ~write:false 0) with
        | Mmu.Translation_not_valid { ptbl_ref = true; _ } -> ()
        | f -> Alcotest.failf "wrong fault %a" Mmu.pp_fault f);
    Alcotest.test_case "unaligned longword across a page boundary" `Quick
      (fun () ->
        let mmu =
          make_mmu
            ~prots:[ (true, Protection.UW, 8); (true, Protection.UW, 9) ]
            ()
        in
        let va = s_va 0 + 510 in
        ignore (ok (Mmu.v_write_long mmu ~mode:Mode.User va 0xAABBCCDD));
        Alcotest.(check int) "readback" 0xAABBCCDD
          (ok (Mmu.v_read_long mmu ~mode:Mode.User va));
        (* bytes really landed in the two frames *)
        Alcotest.(check int) "low frame" 0xDD
          (Phys_mem.read_byte (Mmu.phys mmu) ((8 * 512) + 510));
        Alcotest.(check int) "high frame" 0xAA
          (Phys_mem.read_byte (Mmu.phys mmu) ((9 * 512) + 1)));
    Alcotest.test_case "unaligned write crossing into a protected page \
                        faults without partial effects visible to retry"
      `Quick (fun () ->
        let mmu =
          make_mmu
            ~prots:[ (true, Protection.UW, 8); (true, Protection.KW, 9) ]
            ()
        in
        let va = s_va 0 + 510 in
        match expect_fault "cross write" (Mmu.v_write_long mmu ~mode:Mode.User va 1) with
        | Mmu.Access_violation _ -> ()
        | f -> Alcotest.failf "wrong fault %a" Mmu.pp_fault f);
    Alcotest.test_case "modify fault counted once per page until set" `Quick
      (fun () ->
        let mmu =
          make_mmu ~policy:Mmu.Modify_fault_policy
            ~prots:[ (true, Protection.UW, 8) ]
            ()
        in
        ignore (expect_fault "w1" (Mmu.translate mmu ~mode:Mode.User ~write:true (s_va 0)));
        let pte, pa = ok (Mmu.read_pte mmu (s_va 0)) in
        Phys_mem.write_long (Mmu.phys mmu) pa (Pte.with_modify pte true);
        Mmu.tbis mmu (s_va 0);
        ignore (ok (Mmu.translate mmu ~mode:Mode.User ~write:true (s_va 0)));
        ignore (ok (Mmu.translate mmu ~mode:Mode.User ~write:true (s_va 0)));
        Alcotest.(check int) "exactly one modify fault" 1
          (Mmu.modify_faults_delivered mmu));
  ]

(* --- bytes_write atomicity across page boundaries ------------------- *)

(* Set the modify bit of [va]'s PTE in memory and drop the stale TB
   entry, the way MiniVMS's modify-fault handler does. *)
let set_modify mmu va =
  let pte, pa = ok (Mmu.read_pte mmu va) in
  Phys_mem.write_long (Mmu.phys mmu) pa (Pte.with_modify pte true);
  Mmu.tbis mmu va

let bytes_write_tests =
  [
    Alcotest.test_case
      "straddling write whose second page modify-faults is atomic" `Quick
      (fun () ->
        let mmu =
          make_mmu ~policy:Mmu.Modify_fault_policy
            ~prots:[ (true, Protection.UW, 8); (true, Protection.UW, 9) ]
            ()
        in
        (* only the first page has M set: the write's first two bytes
           translate cleanly, the third modify-faults *)
        set_modify mmu (s_va 0);
        let va = s_va 0 + 510 in
        (match
           expect_fault "second page must modify-fault"
             (Mmu.v_write_long mmu ~mode:Mode.User va 0xAABBCCDD)
         with
        | Mmu.Modify_fault _ -> ()
        | f -> Alcotest.failf "wrong fault %a" Mmu.pp_fault f);
        (* atomicity: no byte of the first page was stored *)
        Alcotest.(check int) "first page byte 510 untouched" 0
          (Phys_mem.read_byte (Mmu.phys mmu) ((8 * 512) + 510));
        Alcotest.(check int) "first page byte 511 untouched" 0
          (Phys_mem.read_byte (Mmu.phys mmu) ((8 * 512) + 511));
        (* the handler sets M on the faulting page and the replay
           completes with every byte in place *)
        set_modify mmu (s_va 1);
        ignore (ok (Mmu.v_write_long mmu ~mode:Mode.User va 0xAABBCCDD));
        Alcotest.(check int) "readback after replay" 0xAABBCCDD
          (ok (Mmu.v_read_long mmu ~mode:Mode.User va));
        Alcotest.(check int) "low frame" 0xDD
          (Phys_mem.read_byte (Mmu.phys mmu) ((8 * 512) + 510));
        Alcotest.(check int) "high frame" 0xAA
          (Phys_mem.read_byte (Mmu.phys mmu) ((9 * 512) + 1)));
    Alcotest.test_case
      "straddling write into protected second page leaves first untouched"
      `Quick (fun () ->
        let mmu =
          make_mmu
            ~prots:[ (true, Protection.UW, 8); (true, Protection.KW, 9) ]
            ()
        in
        let va = s_va 0 + 511 in
        (match
           expect_fault "second page protected"
             (Mmu.v_write_long mmu ~mode:Mode.User va 0x11223344)
         with
        | Mmu.Access_violation { write = true; _ } -> ()
        | f -> Alcotest.failf "wrong fault %a" Mmu.pp_fault f);
        Alcotest.(check int) "first page byte untouched" 0
          (Phys_mem.read_byte (Mmu.phys mmu) ((8 * 512) + 511)));
  ]

(* --- Mmu.probe: the PROBEx/PROBEVM primitive ------------------------- *)

let probe_tests =
  [
    Alcotest.test_case "probe agrees on TLB hit and TLB miss" `Quick
      (fun () ->
        let mmu =
          make_mmu
            ~prots:
              [
                (true, Protection.UW, 8);
                (true, Protection.KW, 9);
                (false, Protection.UW, 10);
                (true, Protection.UR, 11);
              ]
            ()
        in
        List.iter
          (fun page ->
            List.iter
              (fun (mode, write) ->
                Mmu.tbia mmu;
                let cold = Mmu.probe mmu ~mode ~write (s_va page) in
                (* warm the TB (faulting translations leave it cold,
                   which is itself part of the contract) *)
                ignore
                  (Mmu.translate mmu ~mode:Mode.Kernel ~write:false
                     (s_va page));
                let warm = Mmu.probe mmu ~mode ~write (s_va page) in
                if cold <> warm then
                  Alcotest.failf "probe disagrees on page %d" page)
              [ (Mode.User, false); (Mode.User, true); (Mode.Kernel, true) ])
          [ 0; 1; 2; 3 ]);
    Alcotest.test_case "probe ignores the modify-fault policy" `Quick
      (fun () ->
        (* PROBEW must report writability without taking (or counting) a
           modify fault, even when a real write would fault *)
        let mmu =
          make_mmu ~policy:Mmu.Modify_fault_policy
            ~prots:[ (true, Protection.UW, 8) ]
            ()
        in
        let p = ok (Mmu.probe mmu ~mode:Mode.User ~write:true (s_va 0)) in
        Alcotest.(check bool) "accessible despite clear M" true
          p.Mmu.accessible;
        Alcotest.(check bool) "valid" true p.Mmu.pte_valid;
        Alcotest.(check int) "no modify fault delivered" 0
          (Mmu.modify_faults_delivered mmu));
    Alcotest.test_case "probe length semantics: region vs page table" `Quick
      (fun () ->
        let mmu = make_mmu ~prots:[ (true, Protection.KW, 2) ] () in
        Phys_mem.write_long (Mmu.phys mmu) (2 * 512)
          (Pte.make ~prot:Protection.UW ~pfn:9 ());
        Mmu.set_p0br mmu (s_va 0);
        Mmu.set_p0lr mmu 1;
        (* a P0 va beyond P0LR is simply inaccessible, no fault *)
        let p = ok (Mmu.probe mmu ~mode:Mode.Kernel ~write:false 512) in
        Alcotest.(check bool) "beyond P0LR inaccessible" false
          p.Mmu.accessible;
        (* but when the page-table reference itself length-faults in S
           space, the fault propagates with the PT flag (PROBEVM path) *)
        Mmu.set_p0br mmu (s_va 4) (* PTE va beyond SLR *);
        Mmu.set_p0lr mmu 4;
        match
          expect_fault "PT length fault propagates"
            (Mmu.probe mmu ~mode:Mode.Kernel ~write:false 0)
        with
        | Mmu.Access_violation { length_violation = true; ptbl_ref = true; _ }
          ->
            ()
        | f -> Alcotest.failf "wrong fault %a" Mmu.pp_fault f);
  ]

let () =
  Alcotest.run "vax_mem"
    [
      ("phys", phys_tests);
      ("mmu", mmu_tests);
      ("mmu-edge", extra_mmu_tests);
      ("bytes-write", bytes_write_tests);
      ("probe", probe_tests);
      ("tlb", [ tlb_consistency ]);
    ]
