(* Fleet engine tests: parallel-vs-serial bit-identity, input-order
   stability, crash isolation, Metrics.merge, and the two-domain
   regression for the Runner's memoized oracle static pass. *)

open Vax_workloads
module Fleet = Vax_fleet.Fleet
module Metrics = Vax_obs.Metrics
module Oracle = Vax_analysis.Oracle

let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let metrics_t = Alcotest.(list (pair string int))

(* Every catalog workload, in both modes: the full determinism surface. *)
let full_batch () =
  List.concat_map
    (fun w ->
      [
        Fleet.workload_job ~mode:Fleet.Bare ~name:(w ^ "/bare") w;
        Fleet.workload_job ~mode:Fleet.Vm ~name:(w ^ "/vm") w;
      ])
    Catalog.names

let stats_exn name = function
  | Ok (s : Fleet.job_stats) -> s
  | Error (e : Fleet.job_error) ->
      Alcotest.failf "job %s crashed: %s" name e.Fleet.error

(* The acceptance criterion: for every workload in the catalog, each
   per-job result of a [~jobs:4] run is bit-identical to the [~jobs:1]
   (serial, single-domain) run — cycles, instructions, console text,
   the whole metrics snapshot (TLB, block cache, per-vector exception
   counts, devices), and the oracle's coverage. *)
let test_parallel_matches_serial () =
  let batch = full_batch () in
  let serial = Fleet.run ~jobs:1 batch in
  let parallel = Fleet.run ~jobs:4 batch in
  check_int "serial used one domain" 1 serial.Fleet.domains;
  check_int "parallel used four domains" 4 parallel.Fleet.domains;
  check_int "same number of results" (Array.length serial.Fleet.results)
    (Array.length parallel.Fleet.results);
  Array.iteri
    (fun i (job_s, rs) ->
      let job_p, rp = parallel.Fleet.results.(i) in
      check_string "job order" job_s.Fleet.job_name job_p.Fleet.job_name;
      let s = stats_exn job_s.Fleet.job_name rs
      and p = stats_exn job_p.Fleet.job_name rp in
      let ctx fmt = job_s.Fleet.job_name ^ ": " ^ fmt in
      Alcotest.(check bool)
        (ctx "outcome") true
        (s.Fleet.outcome = p.Fleet.outcome);
      check_int (ctx "total cycles") s.Fleet.total_cycles p.Fleet.total_cycles;
      check_int (ctx "guest cycles") s.Fleet.guest_cycles p.Fleet.guest_cycles;
      check_int (ctx "monitor cycles") s.Fleet.monitor_cycles
        p.Fleet.monitor_cycles;
      check_int (ctx "instructions") s.Fleet.instructions p.Fleet.instructions;
      check_string (ctx "console") s.Fleet.console p.Fleet.console;
      Alcotest.check metrics_t (ctx "metrics snapshot") s.Fleet.metrics
        p.Fleet.metrics;
      check_int (ctx "oracle predicted pairs")
        s.Fleet.oracle.Oracle.predicted_pairs
        p.Fleet.oracle.Oracle.predicted_pairs;
      check_int (ctx "oracle hit pairs") s.Fleet.oracle.Oracle.hit_pairs
        p.Fleet.oracle.Oracle.hit_pairs;
      check_int (ctx "oracle events") s.Fleet.oracle.Oracle.observed_events
        p.Fleet.oracle.Oracle.observed_events)
    serial.Fleet.results;
  Alcotest.check metrics_t "merged metrics" serial.Fleet.merged
    parallel.Fleet.merged

(* Results land in input order however the domains interleave: job i of
   the report is job i of the batch, even when a later-queued job
   finishes first. *)
let test_input_order_stability () =
  let batch =
    List.init 9 (fun i ->
        let w = if i mod 3 = 0 then "mix" else "hello" in
        Fleet.workload_job ~mode:Fleet.Vm ~name:(Printf.sprintf "job%d" i) w)
  in
  let report = Fleet.run ~jobs:3 batch in
  check_int "all jobs reported" 9 (Array.length report.Fleet.results);
  Array.iteri
    (fun i (job, r) ->
      check_string "input order preserved" (Printf.sprintf "job%d" i)
        job.Fleet.job_name;
      ignore (stats_exn job.Fleet.job_name r))
    report.Fleet.results

(* A crash in one job (here a nonexistent-memory access escaping as an
   exception) is confined to that job's slot; neighbours complete and
   the batch report still covers every job. *)
let test_crash_isolation () =
  let boom () = raise (Vax_mem.Phys_mem.Nonexistent_memory 0xdead_beef) in
  let batch =
    [
      Fleet.workload_job ~mode:Fleet.Vm ~name:"ok-before" "hello";
      {
        Fleet.job_name = "crasher";
        spec = Fleet.Custom boom;
        max_cycles = None;
        retries = 0;
        inject = None;
      };
      Fleet.workload_job ~mode:Fleet.Vm ~name:"ok-after" "hello";
    ]
  in
  let report = Fleet.run ~jobs:2 batch in
  check_int "three results" 3 (Array.length report.Fleet.results);
  let contains ~sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    n = 0 || go 0
  in
  (match report.Fleet.results.(1) with
  | _, Error (e : Fleet.job_error) ->
      Alcotest.(check bool)
        "error names the exception" true
        (contains ~sub:"Nonexistent_memory" e.Fleet.error);
      check_int "single attempt recorded" 1 e.Fleet.attempts
  | _, Ok _ -> Alcotest.fail "crasher reported Ok");
  let s0 = stats_exn "ok-before" (snd report.Fleet.results.(0)) in
  let s2 = stats_exn "ok-after" (snd report.Fleet.results.(2)) in
  check_int "neighbours identical" s0.Fleet.total_cycles s2.Fleet.total_cycles;
  Alcotest.(check (list (pair string string)))
    "crashed list" [ ("crasher", "crasher") ]
    (List.map
       (fun ((j : Fleet.job), _) -> (j.Fleet.job_name, j.Fleet.job_name))
       (Fleet.crashed report));
  Alcotest.check metrics_t "merged skips the crashed job"
    (Metrics.merge [ s0.Fleet.metrics; s2.Fleet.metrics ])
    report.Fleet.merged

let test_metrics_merge () =
  Alcotest.check metrics_t "empty" [] (Metrics.merge []);
  Alcotest.check metrics_t "singleton sorted" [ ("a", 1); ("b", 2) ]
    (Metrics.merge [ [ ("b", 2); ("a", 1) ] ]);
  Alcotest.check metrics_t "key-wise sum with missing keys"
    [ ("tlb.hits", 30); ("tlb.misses", 4); ("walks", 7) ]
    (Metrics.merge
       [
         [ ("tlb.hits", 10); ("walks", 7) ];
         [ ("tlb.hits", 20); ("tlb.misses", 4) ];
       ]);
  Alcotest.check metrics_t "three-way"
    [ ("x", 6) ]
    (Metrics.merge [ [ ("x", 1) ]; [ ("x", 2) ]; [ ("x", 3) ] ])

(* Regression for the mutex around Runner's memoized vaxlint static
   pass: two domains running the *same* built images concurrently hit
   the oracle cache (same physical identity) from both sides.  Unsynch-
   ronized, this races on the cache list and on the predicted table
   under construction; with the lock, every run completes with
   identical cycles. *)
let test_oracle_cache_two_domains () =
  let built = Catalog.build "hello" in
  let runs = 8 in
  let work () =
    Array.init runs (fun _ ->
        let m = Runner.run_bare built in
        (m.Runner.total_cycles, m.Runner.instructions))
  in
  let other = Domain.spawn work in
  let here = work () in
  let there = Domain.join other in
  let c0, i0 = here.(0) in
  Array.iter
    (fun (c, i) ->
      check_int "cycles stable across domains" c0 c;
      check_int "instructions stable across domains" i0 i)
    (Array.append here there)

let () =
  Alcotest.run "vax_fleet"
    [
      ( "fleet",
        [
          Alcotest.test_case "parallel == serial (full catalog)" `Quick
            test_parallel_matches_serial;
          Alcotest.test_case "input-order stability" `Quick
            test_input_order_stability;
          Alcotest.test_case "crash isolation" `Quick test_crash_isolation;
          Alcotest.test_case "Metrics.merge" `Quick test_metrics_merge;
          Alcotest.test_case "oracle cache from two domains" `Quick
            test_oracle_cache_two_domains;
        ] );
    ]
