(* Tests for vaxflow, the flow-sensitive abstract interpretation behind
   mode-aware trap prediction and computed control flow: the abstract
   domains and their lattice laws, the generic worklist solver, the
   one-instruction transfer function, end-to-end mode refinement,
   computed-jump discovery, the unresolved-transfer soundness valve,
   escaped-address seeding, the value diagnostics, and the oracle and
   metrics integration. *)

open Vax_arch
open Vax_cpu
open Vax_dev
open Vax_analysis
open Vax_workloads
module Asm = Vax_asm.Asm
module Disasm = Vax_asm.Disasm

let insn_of op operands =
  let a = Asm.create ~origin:0 in
  Asm.ins a op operands;
  let img = Asm.assemble a in
  List.hd (Disasm.decode_all img.Asm.code ~base:0)

let check_const msg expected actual =
  Alcotest.(check bool) msg true (Absdom.Const.equal expected actual)

let kernel_state () =
  { Absdom.modes = Absdom.Modes.only Mode.Kernel; regs = Absdom.top_regs () }

(* --- abstract domains ------------------------------------------------- *)

let test_modes_lattice () =
  let k = Absdom.Modes.only Mode.Kernel in
  let u = Absdom.Modes.only Mode.User in
  Alcotest.(check bool) "kernel_only" true (Absdom.Modes.kernel_only k);
  Alcotest.(check bool) "user is not kernel_only" false
    (Absdom.Modes.kernel_only u);
  let ku = Absdom.Modes.join k u in
  Alcotest.(check bool) "join keeps kernel" true (Absdom.Modes.mem Mode.Kernel ku);
  Alcotest.(check bool) "join keeps user" true (Absdom.Modes.mem Mode.User ku);
  Alcotest.(check bool) "join omits executive" false
    (Absdom.Modes.mem Mode.Executive ku);
  Alcotest.(check int) "two names" 2 (List.length (Absdom.Modes.names ku));
  Alcotest.(check bool) "bot" true (Absdom.Modes.is_bot Absdom.Modes.bot);
  Alcotest.(check bool) "top holds every mode" true
    (List.for_all (fun m -> Absdom.Modes.mem m Absdom.Modes.top) Mode.all);
  (* the flow fact seen by the predictor *)
  let fk = Absdom.flow_fact_of (kernel_state ()) in
  Alcotest.(check bool) "kernel fact: may_kernel" true fk.Classify.may_kernel;
  Alcotest.(check bool) "kernel fact: not may_other" false fk.Classify.may_other;
  let fu =
    Absdom.flow_fact_of { (kernel_state ()) with Absdom.modes = u }
  in
  Alcotest.(check bool) "user fact: not may_kernel" false fu.Classify.may_kernel;
  Alcotest.(check bool) "user fact: may_other" true fu.Classify.may_other

let test_const_lattice () =
  let open Absdom.Const in
  check_const "join same" (Known 5) (join (Known 5) (Known 5));
  check_const "join differing" Top (join (Known 5) (Known 6));
  check_const "bot is identity" (Known 5) (join Bot (Known 5));
  check_const "top absorbs" Top (join Top (Known 5));
  check_const "map wraps to 32 bits" (Known 0) (map succ (Known 0xFFFF_FFFF));
  check_const "map2 known" (Known 7) (map2 ( + ) (Known 3) (Known 4));
  check_const "map2 bot propagates" Bot (map2 ( + ) (Known 3) Bot);
  check_const "map2 top propagates" Top (map2 ( + ) (Known 3) Top)

(* --- generic worklist solver ------------------------------------------ *)

(* 1 -> 2 -> 3 -> 2 (back edge), bitmask lattice: the least fixpoint is
   reached despite the cycle *)
let test_solver_fixpoint () =
  let lattice = { Dataflow.join = ( lor ); equal = Int.equal } in
  let transfer n s =
    match n with
    | 1 -> [ (2, s lor 2) ]
    | 2 -> [ (3, s lor 4) ]
    | 3 -> [ (2, s) ]
    | _ -> []
  in
  let states, stats = Dataflow.solve ~lattice ~transfer ~seeds:[ (1, 1) ] in
  Alcotest.(check int) "node 1" 1 (Hashtbl.find states 1);
  Alcotest.(check int) "node 2 (joined over back edge)" 7 (Hashtbl.find states 2);
  Alcotest.(check int) "node 3" 7 (Hashtbl.find states 3);
  Alcotest.(check int) "three nodes" 3 stats.Dataflow.nodes;
  Alcotest.(check bool) "revisited the cycle" true (stats.Dataflow.visits > 3)

(* --- one-instruction transfer ----------------------------------------- *)

let test_step_const_tracking () =
  let eff =
    Absdom.step (kernel_state ()) (insn_of Opcode.Movl [ Asm.Imm 5; Asm.R 0 ])
  in
  check_const "movl #5,r0" (Absdom.Const.Known 5) eff.Absdom.post.Absdom.regs.(0);
  Alcotest.(check bool) "mode untouched" true
    (Absdom.Modes.kernel_only eff.Absdom.post.Absdom.modes);
  let eff =
    Absdom.step eff.Absdom.post
      (insn_of Opcode.Addl3 [ Asm.Imm 2; Asm.R 0; Asm.R 1 ])
  in
  check_const "addl3 #2,r0,r1" (Absdom.Const.Known 7)
    eff.Absdom.post.Absdom.regs.(1);
  let eff =
    Absdom.step eff.Absdom.post
      (insn_of Opcode.Ashl [ Asm.Imm 4; Asm.R 0; Asm.R 2 ])
  in
  check_const "ashl #4,r0,r2" (Absdom.Const.Known 0x50)
    eff.Absdom.post.Absdom.regs.(2);
  let eff = Absdom.step eff.Absdom.post (insn_of Opcode.Clrl [ Asm.R 3 ]) in
  check_const "clrl r3" (Absdom.Const.Known 0) eff.Absdom.post.Absdom.regs.(3)

let test_step_side_effects () =
  (* autoincrement advances the register even though the loaded value is
     unknown *)
  let st = Absdom.top_state () in
  st.Absdom.regs.(3) <- Absdom.Const.Known 0x100;
  let eff = Absdom.step st (insn_of Opcode.Movl [ Asm.Postinc 3; Asm.R 4 ]) in
  check_const "(r3)+ advanced by width" (Absdom.Const.Known 0x104)
    eff.Absdom.post.Absdom.regs.(3);
  check_const "loaded value unknown" Absdom.Const.Top
    eff.Absdom.post.Absdom.regs.(4);
  (* PUSHL tracks SP *)
  let st = Absdom.top_state () in
  st.Absdom.regs.(14) <- Absdom.Const.Known 0x200;
  let eff = Absdom.step st (insn_of Opcode.Pushl [ Asm.R 0 ]) in
  check_const "pushl drops sp by 4" (Absdom.Const.Known 0x1FC)
    eff.Absdom.post.Absdom.regs.(14);
  (* CHMK: the handler may clobber any register, but control resumes at
     the fall-through in the original mode *)
  let st = kernel_state () in
  st.Absdom.regs.(0) <- Absdom.Const.Known 1;
  let eff = Absdom.step st (insn_of Opcode.Chmk [ Asm.Imm 1 ]) in
  check_const "chmk clobbers r0" Absdom.Const.Top eff.Absdom.post.Absdom.regs.(0);
  Alcotest.(check bool) "chmk keeps the mode" true
    (Absdom.Modes.kernel_only eff.Absdom.post.Absdom.modes)

let test_spec_ends () =
  let i = insn_of Opcode.Movl [ Asm.Imm 0x11223344; Asm.R 0 ] in
  Alcotest.(check (list int)) "movl #imm32,r0" [ 6; 7 ] (Disasm.spec_ends i);
  let i = insn_of Opcode.Movl [ Asm.Disp (4, 2); Asm.R 0 ] in
  Alcotest.(check (list int)) "movl 4(r2),r0" [ 3; 4 ] (Disasm.spec_ends i)

(* --- end-to-end mode refinement --------------------------------------- *)

let analyze_image ?(origin = 0x1000) ~entry_mode build =
  let a = Asm.create ~origin in
  build a;
  let img = Asm.assemble a in
  let image =
    { (Cfg.of_asm ~entry_mode "t" img) with Cfg.entries = [ origin ] }
  in
  (image, Absdom.analyze image)

let test_mode_refinement_kernel () =
  let _, r =
    analyze_image ~entry_mode:Mode.Kernel (fun a ->
        Asm.ins a Opcode.Mtpr [ Asm.Imm 0x1F; Asm.Imm 18 ];
        Asm.ins a Opcode.Halt [])
  in
  Alcotest.(check bool) "mode_sound" true r.Absdom.stats.Absdom.mode_sound;
  let s = Hashtbl.find r.Absdom.facts 0x1000 in
  Alcotest.(check bool) "kernel-only fact at mtpr" true
    (Absdom.Modes.kernel_only s.Absdom.modes);
  let f = Absdom.flow_fact_of s in
  let mtpr = insn_of Opcode.Mtpr [ Asm.Imm 0x1F; Asm.Imm 18 ] in
  (* VM assumption: the kernel-only site takes the VM-emulation trap and
     never the ordinary privileged fault *)
  Alcotest.(check (list string)) "vm refined to emulation trap"
    [ State.trap_kind_name State.Trap_vm_emulation ]
    (List.map State.trap_kind_name
       (Classify.predict ~mode:Classify.Vm ~flow:f mtpr));
  (* bare assumption: kernel mode never faults on MTPR *)
  Alcotest.(check int) "bare refined to nothing" 0
    (List.length (Classify.predict ~mode:Classify.Bare ~flow:f mtpr));
  (* ... except WAIT, whose bare microcode faults even from kernel mode *)
  Alcotest.(check (list string)) "bare wait survives refinement"
    [ State.trap_kind_name State.Trap_privileged ]
    (List.map State.trap_kind_name
       (Classify.predict ~mode:Classify.Bare ~flow:f (insn_of Opcode.Wait [])))

let test_mode_refinement_user () =
  let _, r =
    analyze_image ~entry_mode:Mode.User (fun a ->
        Asm.ins a Opcode.Mtpr [ Asm.Imm 0; Asm.Imm 18 ];
        Asm.ins a Opcode.Halt [])
  in
  Alcotest.(check bool) "never-kernel diagnostic" true
    (List.exists
       (function Absdom.Never_kernel { at = 0x1000; _ } -> true | _ -> false)
       r.Absdom.diags);
  let f = Absdom.flow_fact_of (Hashtbl.find r.Absdom.facts 0x1000) in
  let mtpr = insn_of Opcode.Mtpr [ Asm.Imm 0; Asm.Imm 18 ] in
  (* a VM-user privileged site takes the ordinary privileged fault, never
     the VM-emulation trap *)
  Alcotest.(check (list string)) "vm-user refined to privileged"
    [ State.trap_kind_name State.Trap_privileged ]
    (List.map State.trap_kind_name
       (Classify.predict ~mode:Classify.Vm ~flow:f mtpr))

(* --- computed control flow -------------------------------------------- *)

let test_computed_jump_discovery () =
  (* MOVL #target, R0; JMP (R0) over a data blob: recursive descent alone
     cannot see the edge, the constant domain resolves it *)
  let image, r =
    analyze_image ~origin:0x3000 ~entry_mode:Mode.Kernel (fun a ->
        Asm.ins a Opcode.Movl [ Asm.Imm 0x300D; Asm.R 0 ];
        (* 7 bytes *)
        Asm.ins a Opcode.Jmp [ Asm.Deref 0 ];
        (* 2 bytes *)
        Asm.long a 0xDEADBEEF;
        Asm.ins a Opcode.Halt [] (* at 0x300D *))
  in
  let cfg0 = Cfg.analyze image in
  Alcotest.(check bool) "flowless: halt unreachable" false
    (Hashtbl.mem cfg0.Cfg.reachable 0x300D);
  Alcotest.(check bool) "flow: halt reachable" true
    (Hashtbl.mem r.Absdom.cfg.Cfg.reachable 0x300D);
  Alcotest.(check int) "one resolved computed target" 1
    r.Absdom.stats.Absdom.resolved;
  Alcotest.(check int) "no unresolved target" 0 r.Absdom.stats.Absdom.unresolved;
  Alcotest.(check bool) "took a discovery round" true
    (r.Absdom.stats.Absdom.rounds >= 2);
  Alcotest.(check bool) "mode_sound" true r.Absdom.stats.Absdom.mode_sound;
  Alcotest.(check bool) "fact at the discovered target" true
    (Hashtbl.mem r.Absdom.facts 0x300D);
  let unreach cfg =
    List.fold_left
      (fun n -> function Cfg.Unreachable { count; _ } -> n + count | _ -> n)
      0 cfg.Cfg.diags
  in
  Alcotest.(check bool) "unreachable bytes shrank" true
    (unreach r.Absdom.cfg < unreach cfg0)

let test_unresolved_valve () =
  (* JMP (R5) with R5 unknown: the transfer could land anywhere in any
     mode, so every mode fact must be widened to top *)
  let _, r =
    analyze_image ~origin:0x4000 ~entry_mode:Mode.Kernel (fun a ->
        Asm.ins a Opcode.Mtpr [ Asm.Imm 0; Asm.Imm 18 ];
        Asm.ins a Opcode.Jmp [ Asm.Deref 5 ])
  in
  Alcotest.(check int) "one unresolved target" 1
    r.Absdom.stats.Absdom.unresolved;
  Alcotest.(check bool) "valve closed" false r.Absdom.stats.Absdom.mode_sound;
  let s = Hashtbl.find r.Absdom.facts 0x4000 in
  Alcotest.(check int) "mtpr fact widened to top" Absdom.Modes.top
    s.Absdom.modes

let test_escape_resets_mode () =
  (* materializing the image's own origin (here as an immediate) makes
     the origin an unknown-mode entry: the kernel seed joins with top *)
  let _, r =
    analyze_image ~origin:0x5000 ~entry_mode:Mode.Kernel (fun a ->
        Asm.ins a Opcode.Movl [ Asm.Imm 0x5000; Asm.R 0 ];
        Asm.ins a Opcode.Mtpr [ Asm.R 0; Asm.Imm 18 ];
        Asm.ins a Opcode.Halt [])
  in
  Alcotest.(check bool) "escape counted" true (r.Absdom.stats.Absdom.escapes > 0);
  let s = Hashtbl.find r.Absdom.facts 0x5000 in
  Alcotest.(check int) "origin mode widened by the escape" Absdom.Modes.top
    s.Absdom.modes

let test_value_diags () =
  let _, r =
    analyze_image ~origin:0x6000 ~entry_mode:Mode.Kernel (fun a ->
        Asm.ins a Opcode.Prober [ Asm.Lit 3; Asm.Imm 4; Asm.Deref 1 ];
        Asm.ins a Opcode.Movl [ Asm.Imm 0x8000_0040; Asm.R 0 ];
        Asm.ins a Opcode.Movl [ Asm.Imm 7; Asm.Deref 0 ];
        Asm.ins a Opcode.Halt [])
  in
  Alcotest.(check bool) "probe with constant mode operand" true
    (List.exists
       (function
         | Absdom.Probe_const_mode { mode = Mode.User; _ } -> true
         | _ -> false)
       r.Absdom.diags);
  Alcotest.(check bool) "write through constant kernel address" true
    (List.exists
       (function
         | Absdom.Const_kernel_write { addr = 0x8000_0040; _ } -> true
         | _ -> false)
       r.Absdom.diags)

let test_cross_image_resolution () =
  (* image 1 const-resolves a JMP into image 2: a single-image analysis
     must close the valve (the target is outside the image), while the
     workload-wide oracle resolves it against the sibling and keeps the
     mode facts of both images *)
  let build_image ~origin f =
    let a = Asm.create ~origin in
    f a;
    Cfg.of_asm ~entry_mode:Mode.Kernel
      (Printf.sprintf "img%x" origin)
      (Asm.assemble a)
  in
  let img1 =
    build_image ~origin:0x1000 (fun a ->
        Asm.ins a Opcode.Mtpr [ Asm.Imm 0x1F; Asm.Imm 18 ];
        Asm.ins a Opcode.Movl [ Asm.Imm 0x2000; Asm.R 0 ];
        Asm.ins a Opcode.Jmp [ Asm.Deref 0 ])
  in
  let img2 =
    build_image ~origin:0x2000 (fun a ->
        Asm.ins a Opcode.Mtpr [ Asm.Imm 0x1F; Asm.Imm 18 ];
        Asm.ins a Opcode.Halt [])
  in
  (* alone, the resolved-but-foreign target widens every mode fact *)
  let solo = Absdom.analyze img1 in
  Alcotest.(check int) "solo: counted unresolved" 1
    solo.Absdom.stats.Absdom.unresolved;
  Alcotest.(check bool) "solo: valve closed" false
    solo.Absdom.stats.Absdom.mode_sound;
  (* the workload-wide pass resolves it against the sibling image *)
  let o =
    Oracle.of_images ~flow:true ~name:"xi" ~mode:Classify.Vm [ img1; img2 ]
  in
  (match o.Oracle.flow with
  | None -> Alcotest.fail "no flow stats"
  | Some f ->
      Alcotest.(check bool) "workload: mode_sound" true f.Oracle.fs_mode_sound;
      Alcotest.(check int) "workload: no unresolved target" 0
        f.Oracle.fs_unresolved;
      Alcotest.(check bool) "workload: cross-image target counted" true
        (f.Oracle.fs_xresolved >= 1));
  (* the MTPR sites of both images keep kernel-only predictions: under
     the VM assumption they emulation-trap rather than privileged-fault,
     so exactly one kind is predicted per site *)
  List.iter
    (fun pc ->
      Alcotest.(check bool)
        (Printf.sprintf "refined prediction survives at %#x" pc)
        true
        (Hashtbl.find_opt o.Oracle.predicted pc <> None))
    [ 0x1000; 0x2000 ]

(* --- oracle and metrics integration ----------------------------------- *)

let test_oracle_flow_precision () =
  let images = Runner.images_of_built (Catalog.build "hello") in
  let o = Oracle.of_images ~flow:true ~name:"hello" ~mode:Classify.Vm images in
  match o.Oracle.flow with
  | None -> Alcotest.fail "flow-sensitive oracle carries no flow stats"
  | Some f ->
      Alcotest.(check bool) "mode_sound on a real workload" true
        f.Oracle.fs_mode_sound;
      let pairs = Oracle.predicted_pairs o in
      Alcotest.(check bool) "flow never predicts more than flowless" true
        (pairs <= f.Oracle.fs_pairs_flowless);
      Alcotest.(check bool) "flow prunes VM pairs" true
        (pairs < f.Oracle.fs_pairs_flowless);
      Alcotest.(check bool) "refined sites exist" true
        (f.Oracle.fs_fact_sites > 0)

let test_runner_flow_metrics () =
  let m = Runner.run_bare (Catalog.build "hello") in
  let snap = Vax_obs.Metrics.snapshot m.Runner.machine.Machine.metrics in
  let get k =
    match List.assoc_opt k snap with
    | Some v -> v
    | None -> Alcotest.failf "missing metric %s" k
  in
  Alcotest.(check int) "analysis.flow.enabled" 1 (get "analysis.flow.enabled");
  Alcotest.(check int) "analysis.flow.mode_sound" 1
    (get "analysis.flow.mode_sound");
  Alcotest.(check bool) "analysis.flow.pairs_pruned > 0" true
    (get "analysis.flow.pairs_pruned" > 0);
  Alcotest.(check bool) "flow pairs consistent" true
    (get "analysis.flow.pairs" + get "analysis.flow.pairs_pruned"
    = get "analysis.flow.pairs_flowless")

let () =
  Alcotest.run "flow"
    [
      ( "domains",
        [
          Alcotest.test_case "mode lattice" `Quick test_modes_lattice;
          Alcotest.test_case "const lattice" `Quick test_const_lattice;
        ] );
      ( "solver",
        [ Alcotest.test_case "fixpoint over a cycle" `Quick test_solver_fixpoint ]
      );
      ( "step",
        [
          Alcotest.test_case "constant tracking" `Quick test_step_const_tracking;
          Alcotest.test_case "side effects" `Quick test_step_side_effects;
          Alcotest.test_case "spec ends" `Quick test_spec_ends;
        ] );
      ( "refinement",
        [
          Alcotest.test_case "kernel entry" `Quick test_mode_refinement_kernel;
          Alcotest.test_case "user entry" `Quick test_mode_refinement_user;
        ] );
      ( "computed",
        [
          Alcotest.test_case "jump discovery" `Quick
            test_computed_jump_discovery;
          Alcotest.test_case "unresolved valve" `Quick test_unresolved_valve;
          Alcotest.test_case "escape seeding" `Quick test_escape_resets_mode;
          Alcotest.test_case "value diagnostics" `Quick test_value_diags;
          Alcotest.test_case "cross-image resolution" `Quick
            test_cross_image_resolution;
        ] );
      ( "integration",
        [
          Alcotest.test_case "oracle precision" `Quick test_oracle_flow_precision;
          Alcotest.test_case "runner metrics" `Quick test_runner_flow_metrics;
        ] );
    ]
