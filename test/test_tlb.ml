(* Tests for the direct-mapped split-bank TLB, the additive TB cost
   model the experiments are calibrated to, and the decoded-instruction
   cache's invalidation under self-modifying code. *)

open Vax_arch
open Vax_mem

let s_va i = 0x8000_0000 + (i * Addr.page_size)
let p0_va i = i * Addr.page_size

let entry ?(prot = Protection.UW) ?(m = false) ~system pfn =
  { Tlb.pfn; prot; acc = Protection.access_mask prot; m; system }

(* --- the TLB proper ------------------------------------------------- *)

let tlb_tests =
  [
    Alcotest.test_case "split banks: S and P0 page 0 coexist" `Quick (fun () ->
        let t = Tlb.create ~capacity:64 () in
        Tlb.insert t (s_va 0) (entry ~system:true 7);
        Tlb.insert t (p0_va 0) (entry ~system:false 9);
        Alcotest.(check int) "S pfn" 7 (Tlb.find t (s_va 0)).Tlb.pfn;
        Alcotest.(check int) "P0 pfn" 9 (Tlb.find t (p0_va 0)).Tlb.pfn;
        Alcotest.(check int) "no evictions" 0 (Tlb.evictions t));
    Alcotest.test_case "set aliasing evicts past two ways" `Quick (fun () ->
        let t = Tlb.create ~capacity:64 () in
        let sets = Tlb.capacity t / 4 in
        (* three VPNs congruent modulo the per-bank set count: the first
           two share the set's two ways, the third must evict *)
        Tlb.insert t (s_va 0) (entry ~system:true 1);
        Tlb.insert t (s_va sets) (entry ~system:true 2);
        Alcotest.(check int) "two ways hold both" 0 (Tlb.evictions t);
        Alcotest.(check int) "way 0 resident" 1 (Tlb.find t (s_va 0)).Tlb.pfn;
        Alcotest.(check int) "way 1 resident" 2
          (Tlb.find t (s_va sets)).Tlb.pfn;
        Tlb.insert t (s_va (2 * sets)) (entry ~system:true 3);
        Alcotest.(check int) "one eviction" 1 (Tlb.evictions t);
        Alcotest.(check int) "new entry resident" 3
          (Tlb.find t (s_va (2 * sets))).Tlb.pfn;
        Alcotest.check_raises "victim gone" Not_found (fun () ->
            ignore (Tlb.find t (s_va 0))));
    Alcotest.test_case "refill of the same page is not an eviction" `Quick
      (fun () ->
        let t = Tlb.create ~capacity:64 () in
        Tlb.insert t (s_va 3) (entry ~system:true 1);
        Tlb.insert t (s_va 3) (entry ~system:true 5);
        Alcotest.(check int) "no eviction" 0 (Tlb.evictions t);
        Alcotest.(check int) "refilled" 5 (Tlb.find t (s_va 3)).Tlb.pfn);
    Alcotest.test_case "invalidate_all is generation-based" `Quick (fun () ->
        let t = Tlb.create ~capacity:64 () in
        Tlb.insert t (s_va 0) (entry ~system:true 1);
        Tlb.insert t (p0_va 1) (entry ~system:false 2);
        Alcotest.(check int) "two live" 2 (Tlb.entry_count t);
        Tlb.invalidate_all t;
        Alcotest.(check int) "none live" 0 (Tlb.entry_count t);
        Alcotest.check_raises "S gone" Not_found (fun () ->
            ignore (Tlb.find t (s_va 0)));
        (* the buffer is usable again after the generation bump *)
        Tlb.insert t (s_va 0) (entry ~system:true 4);
        Alcotest.(check int) "refill works" 4 (Tlb.find t (s_va 0)).Tlb.pfn);
    Alcotest.test_case "invalidate_process spares system entries" `Quick
      (fun () ->
        let t = Tlb.create ~capacity:64 () in
        Tlb.insert t (s_va 0) (entry ~system:true 1);
        Tlb.insert t (p0_va 0) (entry ~system:false 2);
        Tlb.invalidate_process t;
        Alcotest.(check int) "S survives" 1 (Tlb.find t (s_va 0)).Tlb.pfn;
        Alcotest.check_raises "P0 gone" Not_found (fun () ->
            ignore (Tlb.find t (p0_va 0)));
        Alcotest.(check int) "one live" 1 (Tlb.entry_count t));
    Alcotest.test_case "invalidate_single" `Quick (fun () ->
        let t = Tlb.create ~capacity:64 () in
        Tlb.insert t (s_va 0) (entry ~system:true 1);
        Tlb.insert t (s_va 1) (entry ~system:true 2);
        Tlb.invalidate_single t (s_va 0);
        Alcotest.check_raises "gone" Not_found (fun () ->
            ignore (Tlb.find t (s_va 0)));
        Alcotest.(check int) "neighbour lives" 2 (Tlb.find t (s_va 1)).Tlb.pfn);
    Alcotest.test_case "lookup counts; find does not" `Quick (fun () ->
        let t = Tlb.create ~capacity:64 () in
        Tlb.insert t (s_va 0) (entry ~system:true 1);
        ignore (Tlb.find t (s_va 0));
        (try ignore (Tlb.find t (s_va 9)) with Not_found -> ());
        Alcotest.(check int) "find counts no hit" 0 (Tlb.hits t);
        Alcotest.(check int) "find counts no miss" 0 (Tlb.misses t);
        ignore (Tlb.lookup t (s_va 0));
        ignore (Tlb.lookup t (s_va 9));
        Alcotest.(check int) "lookup hit" 1 (Tlb.hits t);
        Alcotest.(check int) "lookup miss" 1 (Tlb.misses t));
  ]

(* --- the additive TB cost model (pins E4/E8 cycle accounting) ------- *)

(* An MMU with an S identity map over [spages] pages (page table beyond
   them) and a P0 table living in S space at S page 0. *)
let make_cost_mmu () =
  let phys = Phys_mem.create ~pages:256 in
  let clock = Cycles.create () in
  let mmu = Mmu.create ~phys ~clock () in
  let spages = 64 in
  let sbr = 128 * Addr.page_size in
  for vpn = 0 to spages - 1 do
    Phys_mem.write_long phys (sbr + (4 * vpn))
      (Pte.make ~valid:true ~prot:Protection.UW ~pfn:vpn ())
  done;
  Mmu.set_sbr mmu sbr;
  Mmu.set_slr mmu spages;
  (* P0 page table at S va of S page 0 => physical page 0 *)
  let p0_table_pa = 0 in
  for vpn = 0 to 7 do
    Phys_mem.write_long phys (p0_table_pa + (4 * vpn))
      (Pte.make ~valid:true ~prot:Protection.UW ~modify:true ~pfn:(16 + vpn) ())
  done;
  Mmu.set_p0br mmu 0x8000_0000;
  Mmu.set_p0lr mmu 8;
  Mmu.set_mapen mmu true;
  (mmu, clock)

let cycles_of clock f =
  let c0 = Cycles.now clock in
  f ();
  Cycles.now clock - c0

let ok = function Ok v -> v | Error _ -> Alcotest.fail "unexpected fault"

let cost_tests =
  [
    Alcotest.test_case "S miss costs tlb_hit + one walk" `Quick (fun () ->
        let mmu, clock = make_cost_mmu () in
        let d =
          cycles_of clock (fun () ->
              ignore (ok (Mmu.translate mmu ~mode:Mode.Kernel ~write:false (s_va 2))))
        in
        Alcotest.(check int) "miss cycles" (Cost.tlb_hit + Cost.tlb_miss_walk) d);
    Alcotest.test_case "warm hit costs tlb_hit only" `Quick (fun () ->
        let mmu, clock = make_cost_mmu () in
        ignore (ok (Mmu.translate mmu ~mode:Mode.Kernel ~write:false (s_va 2)));
        let d =
          cycles_of clock (fun () ->
              ignore (ok (Mmu.translate mmu ~mode:Mode.Kernel ~write:false (s_va 2))))
        in
        Alcotest.(check int) "hit cycles" Cost.tlb_hit d);
    Alcotest.test_case "cold P0 reference is a double walk" `Quick (fun () ->
        let mmu, clock = make_cost_mmu () in
        (* outer consult + P0 PTE walk + inner S consult + S walk *)
        let d =
          cycles_of clock (fun () ->
              ignore (ok (Mmu.translate mmu ~mode:Mode.Kernel ~write:false (p0_va 0))))
        in
        Alcotest.(check int) "double-walk cycles"
          ((2 * Cost.tlb_hit) + (2 * Cost.tlb_miss_walk))
          d;
        (* second P0 page in the same table: the S page holding the table
           is now cached, so only one walk remains *)
        let d2 =
          cycles_of clock (fun () ->
              ignore (ok (Mmu.translate mmu ~mode:Mode.Kernel ~write:false (p0_va 1))))
        in
        Alcotest.(check int) "single-walk cycles"
          ((2 * Cost.tlb_hit) + Cost.tlb_miss_walk)
          d2);
    Alcotest.test_case "fast path charges and counts like the full path"
      `Quick (fun () ->
        let mmu, clock = make_cost_mmu () in
        ignore (ok (Mmu.translate mmu ~mode:Mode.Kernel ~write:false (s_va 2)));
        let tlb = Mmu.tlb mmu in
        Tlb.reset_stats tlb;
        let pa_full = ok (Mmu.translate mmu ~mode:Mode.Kernel ~write:false (s_va 2)) in
        let h_full = Tlb.hits tlb in
        let d =
          cycles_of clock (fun () ->
              let pa = Mmu.try_translate mmu ~mode:Mode.Kernel ~write:false (s_va 2) in
              Alcotest.(check int) "same pa" pa_full pa)
        in
        Alcotest.(check int) "hit cycles" Cost.tlb_hit d;
        Alcotest.(check int) "one hit counted per path" (2 * h_full)
          (Tlb.hits tlb));
    Alcotest.test_case "virtual access = translation + memory_access" `Quick
      (fun () ->
        let mmu, clock = make_cost_mmu () in
        ignore (ok (Mmu.v_read_long mmu ~mode:Mode.Kernel (s_va 2)));
        let d =
          cycles_of clock (fun () ->
              ignore (ok (Mmu.v_read_long mmu ~mode:Mode.Kernel (s_va 2))))
        in
        Alcotest.(check int) "warm read cycles"
          (Cost.tlb_hit + Cost.memory_access)
          d);
    Alcotest.test_case "each reference counted exactly once" `Quick (fun () ->
        let mmu, _ = make_cost_mmu () in
        let tlb = Mmu.tlb mmu in
        Tlb.reset_stats tlb;
        (* cold: fast path finds nothing (uncounted), full path counts one
           miss; warm: fast path counts one hit *)
        ignore (ok (Mmu.v_read_long mmu ~mode:Mode.Kernel (s_va 5)));
        Alcotest.(check int) "one miss" 1 (Tlb.misses tlb);
        Alcotest.(check int) "no hit" 0 (Tlb.hits tlb);
        ignore (ok (Mmu.v_read_long mmu ~mode:Mode.Kernel (s_va 5)));
        Alcotest.(check int) "one hit" 1 (Tlb.hits tlb);
        Alcotest.(check int) "still one miss" 1 (Tlb.misses tlb));
  ]

(* --- decode cache under self-modifying code ------------------------- *)

module Asm = Vax_asm.Asm
module Cpu = Vax_cpu.Cpu
module State = Vax_cpu.State
module Decode_cache = Vax_cpu.Decode_cache

(* movl short-literal, r0; halt — the literal byte sits at origin+1 *)
let smc_image origin =
  let a = Asm.create ~origin in
  Asm.ins a Opcode.Movl [ Asm.Lit 60; Asm.R 0 ];
  Asm.ins a Opcode.Halt [];
  (Asm.assemble a).Asm.code

let run_to_halt cpu pc =
  let st = cpu.Cpu.state in
  st.State.halted <- false;
  State.set_pc st pc;
  (match Cpu.run cpu ~max_instructions:100 () with
  | Vax_cpu.Exec.Machine_halted -> ()
  | _ -> Alcotest.fail "program did not halt");
  State.reg st 0

let smc_tests =
  [
    Alcotest.test_case "store invalidates cached decode (MAPEN off)" `Quick
      (fun () ->
        let cpu = Cpu.create ~memory_pages:64 () in
        Cpu.load cpu 0x200 (smc_image 0x200);
        Alcotest.(check int) "first run" 60 (run_to_halt cpu 0x200);
        let st = cpu.Cpu.state in
        let hits0 = Decode_cache.hits st.State.dcache in
        Alcotest.(check int) "second run (cached)" 60 (run_to_halt cpu 0x200);
        Alcotest.(check bool) "decode cache was used" true
          (Decode_cache.hits st.State.dcache > hits0);
        (* patch the literal byte in place: 60 -> 61 *)
        Phys_mem.write_byte cpu.Cpu.phys 0x201 61;
        Alcotest.(check int) "patched run sees new bytes" 61
          (run_to_halt cpu 0x200));
    Alcotest.test_case "store invalidates cached decode (MAPEN on)" `Quick
      (fun () ->
        let cpu = Cpu.create ~memory_pages:64 () in
        let mmu = cpu.Cpu.mmu in
        let sbr = 32 * Addr.page_size in
        for vpn = 0 to 31 do
          Phys_mem.write_long cpu.Cpu.phys (sbr + (4 * vpn))
            (Pte.make ~valid:true ~prot:Protection.UW ~pfn:vpn ())
        done;
        Mmu.set_sbr mmu sbr;
        Mmu.set_slr mmu 32;
        Mmu.set_mapen mmu true;
        Cpu.load cpu 0x200 (smc_image 0x8000_0200);
        let va = 0x8000_0200 in
        Alcotest.(check int) "first run" 60 (run_to_halt cpu va);
        let st = cpu.Cpu.state in
        let hits0 = Decode_cache.hits st.State.dcache in
        Alcotest.(check int) "second run (cached)" 60 (run_to_halt cpu va);
        Alcotest.(check bool) "decode cache was used" true
          (Decode_cache.hits st.State.dcache > hits0);
        (* patch through the mapping: the store must invalidate the
           cached decode of the instruction it hits *)
        State.write_byte st Mode.Kernel 0x8000_0201 61;
        Alcotest.(check int) "patched run sees new bytes" 61
          (run_to_halt cpu va));
    Alcotest.test_case "TB invalidation drops cached decodes" `Quick (fun () ->
        let cpu = Cpu.create ~memory_pages:64 () in
        Cpu.load cpu 0x200 (smc_image 0x200);
        ignore (run_to_halt cpu 0x200);
        ignore (run_to_halt cpu 0x200);
        let st = cpu.Cpu.state in
        let misses0 = Decode_cache.misses st.State.dcache in
        Mmu.tbia cpu.Cpu.mmu;
        ignore (run_to_halt cpu 0x200);
        Alcotest.(check bool) "tbia forced a fresh decode" true
          (Decode_cache.misses st.State.dcache > misses0));
  ]

let () =
  Alcotest.run "vax_tlb"
    [ ("tlb", tlb_tests); ("cost-model", cost_tests); ("smc", smc_tests) ]
