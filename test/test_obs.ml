(* Tests for the observability layer: the shared JSON emitter/parser,
   the machine event trace, the metrics registry, and an end-to-end run
   checking the trace against the vaxlint differential oracle. *)

open Vax_obs
open Vax_workloads
open Vax_vmos

let qtest name gen f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name gen f)

(* --- Json ------------------------------------------------------------ *)

let json_tests =
  [
    Alcotest.test_case "non-finite floats emit null" `Quick (fun () ->
        Alcotest.(check string) "nan" "null" (Json.to_string (Json.Num nan));
        Alcotest.(check string) "inf" "null"
          (Json.to_string (Json.Num infinity));
        Alcotest.(check string) "-inf" "null"
          (Json.to_string (Json.Num neg_infinity));
        (* and inside structures the document stays valid JSON *)
        let s = Json.to_string (Json.Arr [ Json.Num nan; Json.int 1 ]) in
        Alcotest.(check string) "array" "[null, 1]" s;
        match Json.parse s with
        | Json.Arr [ Json.Null; Json.Num 1.0 ] -> ()
        | _ -> Alcotest.fail "reparse mismatch");
    Alcotest.test_case "integers above 1e15 keep full precision" `Quick
      (fun () ->
        List.iter
          (fun n ->
            (* the emitted token must reproduce [float_of_int n] exactly,
               even above 1e15 where %g-style emitters lose digits *)
            let s = Json.to_string (Json.int n) in
            match Json.parse s with
            | Json.Num f ->
                if f <> float_of_int n then
                  Alcotest.failf "%d emitted as %s, reparsed as %h" n s f
            | _ -> Alcotest.fail "not a number")
          [
            1_000_000_000_000_000_1;
            (1 lsl 60) + (1 lsl 10);
            -9_007_199_254_740_992;
            4611686018427387904;
          ]);
    qtest "every finite float round-trips exactly" QCheck.float (fun f ->
        match Json.parse (Json.to_string (Json.Num f)) with
        | Json.Num g -> g = f || (Float.is_nan f && Float.is_nan g)
        | Json.Null -> not (Float.is_finite f)
        | _ -> false);
    Alcotest.test_case "parse round-trip of a nested document" `Quick
      (fun () ->
        let doc =
          Json.Obj
            [
              ("schema", Json.Str "x/1");
              ("items", Json.Arr [ Json.Bool true; Json.Null; Json.Num 2.5 ]);
              ("s", Json.Str "a\"b\\c\nd");
            ]
        in
        Alcotest.(check bool)
          "structural equality" true
          (Json.parse (Json.to_string doc) = doc);
        Alcotest.(check bool)
          "member" true
          (Json.member "schema" doc = Some (Json.Str "x/1"));
        Alcotest.(check bool) "absent member" true
          (Json.member "nope" doc = None));
    Alcotest.test_case "malformed input raises Parse_error" `Quick (fun () ->
        List.iter
          (fun s ->
            match Json.parse s with
            | exception Json.Parse_error _ -> ()
            | _ -> Alcotest.failf "accepted %S" s)
          [ "{"; "[1,]"; "tru"; "\"unterminated"; "1 2"; "" ]);
  ]

(* --- Trace ----------------------------------------------------------- *)

let all_kinds =
  List.init Trace.n_kinds (fun i ->
      match Trace.kind_of_code i with
      | Some k -> k
      | None -> Alcotest.failf "no kind for code %d" i)

let trace_tests =
  [
    Alcotest.test_case "kind codes and names round-trip" `Quick (fun () ->
        List.iter
          (fun k ->
            Alcotest.(check bool) "code" true
              (Trace.kind_of_code (Trace.kind_code k) = Some k);
            Alcotest.(check bool) "name" true
              (Trace.kind_of_name (Trace.kind_name k) = Some k))
          all_kinds);
    Alcotest.test_case "null trace: disabled, emit no-op, enable raises"
      `Quick (fun () ->
        Alcotest.(check bool) "disabled" false (Trace.enabled Trace.null);
        Trace.emit Trace.null Trace.Retire 0x100;
        Alcotest.(check int) "still empty" 0 (Trace.total Trace.null);
        (match Trace.set_enabled Trace.null true with
        | exception Invalid_argument _ -> ()
        | () -> Alcotest.fail "enabling null must raise");
        (* disabling it is harmless *)
        Trace.set_enabled Trace.null false);
    Alcotest.test_case "counts survive ring wrap; ring keeps the tail"
      `Quick (fun () ->
        let tr = Trace.create ~capacity:4 () in
        Trace.emit tr Trace.Retire 1;
        Alcotest.(check int) "no-op while disabled" 0 (Trace.total tr);
        Trace.set_enabled tr true;
        for i = 0 to 9 do
          Trace.emit tr
            (if i mod 2 = 0 then Trace.Retire else Trace.Tlb_fill)
            ~b:(i * 10) i
        done;
        Alcotest.(check int) "total" 10 (Trace.total tr);
        Alcotest.(check int) "retires" 5 (Trace.count tr Trace.Retire);
        Alcotest.(check int) "fills" 5 (Trace.count tr Trace.Tlb_fill);
        let seen = ref [] in
        Trace.iter_retained tr (fun ~seq _ ~a ~b ~c:_ ->
            seen := (seq, a, b) :: !seen);
        Alcotest.(check (list (triple int int int)))
          "last capacity events, oldest first"
          [ (6, 6, 60); (7, 7, 70); (8, 8, 80); (9, 9, 90) ]
          (List.rev !seen));
    Alcotest.test_case "sink sees every emit" `Quick (fun () ->
        let tr = Trace.create ~capacity:8 () in
        Trace.set_enabled tr true;
        let got = ref [] in
        Trace.set_sink tr
          (Some (fun ~seq kind ~a ~b:_ ~c:_ -> got := (seq, kind, a) :: !got));
        Trace.emit tr Trace.Vm_entry 0x200;
        Trace.emit tr Trace.Vm_exit ~b:0x204 0x10;
        Alcotest.(check int) "two callbacks" 2 (List.length !got);
        Alcotest.(check bool) "payload" true
          (List.rev !got
          = [ (0, Trace.Vm_entry, 0x200); (1, Trace.Vm_exit, 0x10) ]));
    Alcotest.test_case "JSONL lines are valid vax-trace/1" `Quick (fun () ->
        (match Json.parse (Trace.header_json_line ()) with
        | Json.Obj _ as h -> (
            Alcotest.(check bool) "schema" true
              (Json.member "schema" h = Some (Json.Str "vax-trace/1"));
            match Json.member "kinds" h with
            | Some (Json.Arr ks) ->
                Alcotest.(check int) "all kinds listed" Trace.n_kinds
                  (List.length ks)
            | _ -> Alcotest.fail "missing kinds")
        | _ -> Alcotest.fail "header not an object");
        List.iter
          (fun k ->
            let line =
              Trace.to_json_line ~seq:7 k ~a:0x8000_0000 ~b:3 ~c:1
            in
            match Json.parse line with
            | Json.Obj _ as j ->
                Alcotest.(check bool)
                  (Trace.kind_name k ^ " ev field")
                  true
                  (Json.member "ev" j = Some (Json.Str (Trace.kind_name k)));
                let na, _, _ = Trace.arg_names k in
                if na <> "" then
                  Alcotest.(check bool) (na ^ " field") true
                    (Json.member na j = Some (Json.Num 2147483648.0))
            | _ -> Alcotest.failf "bad line %s" line)
          all_kinds);
  ]

(* --- Metrics --------------------------------------------------------- *)

let metrics_tests =
  [
    Alcotest.test_case "gauges, groups, sorting, replacement" `Quick
      (fun () ->
        let m = Metrics.create () in
        let x = ref 5 in
        Metrics.register m "b.count" (fun () -> !x);
        Metrics.register m "a.count" (fun () -> 1);
        Metrics.register_group m "vm.g" (fun () -> [ ("z", 9); ("y", 8) ]);
        Alcotest.(check (list (pair string int)))
          "sorted snapshot"
          [ ("a.count", 1); ("b.count", 5); ("vm.g.y", 8); ("vm.g.z", 9) ]
          (Metrics.snapshot m);
        (* gauges are live, not sampled at registration *)
        x := 6;
        Alcotest.(check bool) "live" true
          (List.assoc "b.count" (Metrics.snapshot m) = 6);
        (* re-registration replaces *)
        Metrics.register m "a.count" (fun () -> 2);
        Alcotest.(check bool) "replaced" true
          (List.assoc "a.count" (Metrics.snapshot m) = 2);
        match Json.member "schema" (Metrics.to_json m) with
        | Some (Json.Str "vax-metrics/1") -> ()
        | _ -> Alcotest.fail "bad metrics schema");
  ]

(* --- End-to-end: trace vs the differential oracle -------------------- *)

let build_workload () =
  Minivms.build ~programs:[ Programs.syscall_storm ~iterations:5 ] ()

let run_traced () =
  Runner.run_vm
    ~instrument:(fun mach ->
      Vax_obs.Trace.set_enabled mach.Vax_dev.Machine.trace true)
    (build_workload ())

let e2e_tests =
  [
    Alcotest.test_case "trace trap counts equal the oracle's observations"
      `Slow (fun () ->
        let m = run_traced () in
        let tr = m.Runner.machine.Vax_dev.Machine.trace in
        let traced_traps =
          Trace.count tr Trace.Trap_vm_emulation
          + Trace.count tr Trace.Trap_privileged
          + Trace.count tr Trace.Trap_modify
        in
        let cov = Vax_analysis.Oracle.coverage m.Runner.oracle in
        Alcotest.(check int) "trap events"
          cov.Vax_analysis.Oracle.observed_events traced_traps;
        Alcotest.(check bool) "saw vm entries" true
          (Trace.count tr Trace.Vm_entry > 0);
        Alcotest.(check bool) "saw vm exits" true
          (Trace.count tr Trace.Vm_exit > 0);
        (* every VM exit is an exception/interrupt delivered from VM mode *)
        Alcotest.(check bool) "exits bounded by deliveries" true
          (Trace.count tr Trace.Vm_exit
          <= Trace.count tr Trace.Exception + Trace.count tr Trace.Interrupt));
    Alcotest.test_case "metrics registry matches the run's counters" `Slow
      (fun () ->
        let m = run_traced () in
        let mach = m.Runner.machine in
        let snap = Metrics.snapshot mach.Vax_dev.Machine.metrics in
        let get k =
          match List.assoc_opt k snap with
          | Some v -> v
          | None -> Alcotest.failf "metric %s missing" k
        in
        Alcotest.(check int) "cpu.instructions"
          mach.Vax_dev.Machine.cpu.Vax_cpu.State.instructions
          (get "cpu.instructions");
        Alcotest.(check bool) "tlb.hits nonzero" true (get "tlb.hits" > 0);
        Alcotest.(check bool) "per-VM group present" true
          (get "vm.guest.emulation_traps" > 0));
    Alcotest.test_case "tracing does not perturb simulated cycles" `Slow
      (fun () ->
        let plain = Runner.run_vm (build_workload ()) in
        let traced = run_traced () in
        Alcotest.(check int) "identical total cycles"
          plain.Runner.total_cycles traced.Runner.total_cycles;
        Alcotest.(check int) "identical instructions"
          plain.Runner.instructions traced.Runner.instructions);
  ]

let () =
  Alcotest.run "vax_obs"
    [
      ("json", json_tests);
      ("trace", trace_tests);
      ("metrics", metrics_tests);
      ("end-to-end", e2e_tests);
    ]
