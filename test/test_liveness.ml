(* Liveness-guided superblock compilation tests.

   The liveness facts are a pure host-speed optimisation: compiling
   superblock slots with deferred condition codes and pre-folded
   constant operands must leave every simulated observable bit-identical
   to the unguided compiler.  The differential suite runs every catalog
   workload, bare and under the VMM, with facts installed and without,
   and compares cycles (total and guest/monitor split), instruction
   counts, registers, PSL, console output, run outcome, TLB statistics
   and the full event trace.

   The solver unit tests pin down the backward analysis itself on
   directed programs: a full kill proves all four codes dead, a
   conditional branch keeps exactly its condition alive — including
   across a block boundary and around a loop back-edge — an unresolved
   computed jump forces all-live, constants fold only when vaxflow
   settles, and dead register writes are counted but never elided. *)

open Vax_arch
open Vax_cpu
open Vax_workloads
open Vax_analysis
module Asm = Vax_asm.Asm
module Disasm = Vax_asm.Disasm
module Trace = Vax_obs.Trace

let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Differential suite: facts on vs. facts off, everything observable *)

type summary = {
  outcome : string;
  total : int;
  guest : int;
  monitor : int;
  instrs : int;
  console : string;
  regs : int list;
  psl : int;
  tlb : int * int * int;
  trace_total : int;
  trace_events : string list;
}

let enable_trace (m : Vax_dev.Machine.t) =
  Trace.set_enabled m.Vax_dev.Machine.trace true

let summarize (m : Runner.measurement) =
  let mach = m.Runner.machine in
  let st = mach.Vax_dev.Machine.cpu in
  let tlb = Vax_mem.Mmu.tlb mach.Vax_dev.Machine.mmu in
  let tr = mach.Vax_dev.Machine.trace in
  let evs = ref [] in
  Trace.iter_retained tr (fun ~seq k ~a ~b ~c ->
      evs :=
        Printf.sprintf "%d:%s:%d:%d:%d" seq (Trace.kind_name k) a b c :: !evs);
  {
    outcome = Format.asprintf "%a" Vax_dev.Machine.pp_outcome m.Runner.outcome;
    total = m.Runner.total_cycles;
    guest = m.Runner.guest_cycles;
    monitor = m.Runner.monitor_cycles;
    instrs = m.Runner.instructions;
    console = m.Runner.console;
    regs = List.init 16 (State.reg st);
    psl = st.State.psl;
    tlb = (Vax_mem.Tlb.hits tlb, Vax_mem.Tlb.misses tlb, Vax_mem.Tlb.evictions tlb);
    trace_total = Trace.total tr;
    trace_events = List.rev !evs;
  }

let check_summary name a b =
  Alcotest.(check string) (name ^ ": outcome") a.outcome b.outcome;
  check_int (name ^ ": total cycles") a.total b.total;
  check_int (name ^ ": guest cycles") a.guest b.guest;
  check_int (name ^ ": monitor cycles") a.monitor b.monitor;
  check_int (name ^ ": instructions") a.instrs b.instrs;
  Alcotest.(check string) (name ^ ": console") a.console b.console;
  Alcotest.(check (list int)) (name ^ ": registers") a.regs b.regs;
  check_int (name ^ ": psl") a.psl b.psl;
  let ah, am, ae = a.tlb and bh, bm, be = b.tlb in
  check_int (name ^ ": tlb hits") ah bh;
  check_int (name ^ ": tlb misses") am bm;
  check_int (name ^ ": tlb evictions") ae be;
  check_int (name ^ ": trace total") a.trace_total b.trace_total;
  Alcotest.(check (list string)) (name ^ ": trace events") a.trace_events
    b.trace_events

let test_bare_differential () =
  List.iter
    (fun w ->
      let built = Catalog.build w in
      let on =
        summarize
          (Runner.run_bare ~instrument:enable_trace ~liveness:true built)
      in
      let off =
        summarize
          (Runner.run_bare ~instrument:enable_trace ~liveness:false built)
      in
      check_summary ("bare " ^ w) off on)
    Catalog.names

let test_vm_differential () =
  List.iter
    (fun w ->
      let built = Catalog.build w in
      let on =
        summarize (Runner.run_vm ~instrument:enable_trace ~liveness:true built)
      in
      let off =
        summarize
          (Runner.run_vm ~instrument:enable_trace ~liveness:false built)
      in
      check_summary ("vm " ^ w) off on)
    Catalog.names

let test_two_vm_differential () =
  let b1 = Catalog.build "editing" and b2 = Catalog.build "transaction" in
  let run liveness =
    let m1, m2 =
      Runner.run_two_vms ~instrument:enable_trace ~liveness b1 b2
    in
    (summarize m1, summarize m2)
  in
  let on1, on2 = run true and off1, off2 = run false in
  check_summary "two-vms vm1" off1 on1;
  check_summary "two-vms vm2" off2 on2

(* The facts must actually engage on the workloads, otherwise the
   differential above proves nothing. *)
let test_facts_engage () =
  let built = Catalog.build "mix" in
  let m = Runner.run_bare ~liveness:true built in
  let bc = m.Runner.machine.Vax_dev.Machine.bcache in
  Alcotest.(check bool) "facts installed" true (bc.Block_cache.facts <> None);
  Alcotest.(check bool) "fact slots" true (bc.Block_cache.fact_slots > 0);
  Alcotest.(check bool) "cc elided" true (bc.Block_cache.cc_elided > 0);
  let off = Runner.run_bare ~liveness:false built in
  let bco = off.Runner.machine.Vax_dev.Machine.bcache in
  Alcotest.(check bool) "no facts when off" true (bco.Block_cache.facts = None);
  check_int "no fact slots when off" 0 bco.Block_cache.fact_slots

(* ------------------------------------------------------------------ *)
(* Solver unit tests on directed programs *)

let image_of ~origin f =
  let a = Asm.create ~origin in
  f a;
  let img = Asm.assemble a in
  { (Cfg.of_asm "t" img) with Cfg.entries = [ origin ] }

(* The fact recorded at the first instruction with [op], via the same
   CFG recovery the pass itself uses. *)
let fact_at facts image op =
  let cfg = Cfg.analyze image in
  let insns =
    List.sort_uniq compare
      (List.concat_map
         (fun (b : Cfg.block) ->
           List.map (fun (i : Disasm.insn) -> (i.Disasm.address, i)) b.Cfg.b_insns)
         cfg.Cfg.blocks)
  in
  match List.find_opt (fun (_, i) -> i.Disasm.opcode = Some op) insns with
  | None -> Alcotest.fail "opcode not found in recovered CFG"
  | Some (va, i) ->
      Block_facts.find facts ~va ~op ~len:i.Disasm.length

let cc_dead facts image op =
  match fact_at facts image op with
  | None -> Alcotest.fail "no fact at site"
  | Some f -> f.Block_facts.f_cc_dead

let nvc = Block_facts.n_bit lor Block_facts.v_bit lor Block_facts.c_bit

(* A straight line that overwrites every code before any read: all four
   bits are dead after the arithmetic op (MOVL keeps C, but the TSTL
   then kills it unread). *)
let test_full_kill () =
  let image =
    image_of ~origin:0x1000 (fun a ->
        Asm.ins a Opcode.Addl2 [ Asm.R 1; Asm.R 0 ];
        Asm.ins a Opcode.Movl [ Asm.Imm 5; Asm.R 2 ];
        Asm.ins a Opcode.Tstl [ Asm.R 2 ];
        Asm.ins a Opcode.Bneq [ Asm.Branch "end" ];
        Asm.label a "end";
        Asm.ins a Opcode.Halt [])
  in
  let facts, _ = Liveness.facts_of_images [ image ] in
  check_int "all codes dead after ADDL2" Block_facts.all_cc
    (cc_dead facts image Opcode.Addl2)

(* A conditional branch keeps exactly its condition alive: both arms of
   the BNEQ kill the codes immediately, so after the CMPL only Z (read
   by the branch) survives. *)
let test_branch_keeps_condition () =
  let image =
    image_of ~origin:0x1000 (fun a ->
        Asm.ins a Opcode.Cmpl [ Asm.R 0; Asm.R 1 ];
        Asm.ins a Opcode.Bneq [ Asm.Branch "taken" ];
        Asm.ins a Opcode.Tstl [ Asm.R 3 ];
        Asm.ins a Opcode.Brb [ Asm.Branch "end" ];
        Asm.label a "taken";
        Asm.ins a Opcode.Tstl [ Asm.R 4 ];
        Asm.label a "end";
        Asm.ins a Opcode.Halt [])
  in
  let facts, _ = Liveness.facts_of_images [ image ] in
  check_int "N, V, C dead after CMPL; Z live" nvc
    (cc_dead facts image Opcode.Cmpl)

(* The condition must survive a block boundary: the INCL's Z is read by
   a branch in the *next* block (after an unconditional BRB). *)
let test_cc_across_block_boundary () =
  let image =
    image_of ~origin:0x1000 (fun a ->
        Asm.ins a Opcode.Incl [ Asm.R 0 ];
        Asm.ins a Opcode.Brb [ Asm.Branch "l1" ];
        Asm.label a "l1";
        Asm.ins a Opcode.Bneq [ Asm.Branch "l2" ];
        Asm.ins a Opcode.Tstl [ Asm.R 1 ];
        Asm.label a "l2";
        Asm.ins a Opcode.Tstl [ Asm.R 2 ];
        Asm.ins a Opcode.Halt [])
  in
  let facts, _ = Liveness.facts_of_images [ image ] in
  check_int "Z flows across the BRB boundary" nvc
    (cc_dead facts image Opcode.Incl)

(* A loop: Z stays live around the back edge (the BNEQ reads what the
   DECL of the *next* iteration wrote), N/V/C die on both the back edge
   (DECL is a full writer) and the exit (TSTL).  The loop counter stays
   live at the loop head. *)
let test_loop_back_edge () =
  let origin = 0x1000 in
  let image =
    image_of ~origin (fun a ->
        Asm.ins a Opcode.Movl [ Asm.Imm 3; Asm.R 1 ];
        Asm.label a "loop";
        Asm.ins a Opcode.Decl [ Asm.R 1 ];
        Asm.ins a Opcode.Bneq [ Asm.Branch "loop" ];
        Asm.ins a Opcode.Tstl [ Asm.R 2 ];
        Asm.ins a Opcode.Halt [])
  in
  let facts, _ = Liveness.facts_of_images [ image ] in
  check_int "only Z live after DECL in the loop" nvc
    (cc_dead facts image Opcode.Decl);
  (* the entry block's solved live-out is the loop head's live-in: the
     counter register must be in it *)
  let cfg = Cfg.analyze image in
  let liveouts, _ = Liveness.solve_image cfg in
  match Hashtbl.find_opt liveouts origin with
  | None -> Alcotest.fail "entry block not solved"
  | Some m ->
      Alcotest.(check bool) "R1 live at loop head" true
        (Liveness.regs_of m land (1 lsl 1) <> 0)

(* An unresolved computed jump is an unknown successor: everything is
   live behind it, so the ADDL2 keeps all four codes. *)
let test_computed_jump_all_live () =
  let image =
    image_of ~origin:0x1000 (fun a ->
        Asm.ins a Opcode.Addl2 [ Asm.R 1; Asm.R 2 ];
        Asm.ins a Opcode.Jmp [ Asm.Deref 0 ])
  in
  let facts, _ = Liveness.facts_of_images [ image ] in
  check_int "nothing dead before a computed jump" 0
    (cc_dead facts image Opcode.Addl2)

(* Constant folding: vaxflow proves R0 = 5 at the ADDL2's read, the
   workload settles, so the fact carries the folded operand. *)
let test_const_fact () =
  let image =
    image_of ~origin:0x1000 (fun a ->
        Asm.ins a Opcode.Movl [ Asm.Imm 5; Asm.R 0 ];
        Asm.ins a Opcode.Addl2 [ Asm.R 0; Asm.R 1 ];
        Asm.ins a Opcode.Halt [])
  in
  let facts, stats = Liveness.facts_of_images [ image ] in
  Alcotest.(check bool) "analysis settled" true stats.Liveness.mode_sound;
  match fact_at facts image Opcode.Addl2 with
  | None -> Alcotest.fail "no fact at ADDL2"
  | Some f ->
      Alcotest.(check (list (pair int int)))
        "operand 0 folded to 5"
        [ (0, 5) ]
        f.Block_facts.f_consts

(* Dead register writes are counted — and only counted. *)
let test_dead_reg_write_counted () =
  let image =
    image_of ~origin:0x1000 (fun a ->
        Asm.ins a Opcode.Movl [ Asm.Imm 1; Asm.R 5 ];
        Asm.ins a Opcode.Movl [ Asm.Imm 2; Asm.R 5 ];
        Asm.ins a Opcode.Tstl [ Asm.R 5 ];
        Asm.ins a Opcode.Halt [])
  in
  let facts, _ = Liveness.facts_of_images [ image ] in
  Alcotest.(check bool) "first write to R5 detected dead" true
    (facts.Block_facts.dead_reg_writes >= 1)

let () =
  Alcotest.run "liveness"
    [
      ( "differential",
        [
          Alcotest.test_case "bare workloads: facts = no facts" `Quick
            test_bare_differential;
          Alcotest.test_case "vm workloads: facts = no facts" `Quick
            test_vm_differential;
          Alcotest.test_case "two vms: facts = no facts" `Quick
            test_two_vm_differential;
          Alcotest.test_case "facts engage" `Quick test_facts_engage;
        ] );
      ( "solver",
        [
          Alcotest.test_case "full kill: all codes dead" `Quick test_full_kill;
          Alcotest.test_case "branch keeps its condition" `Quick
            test_branch_keeps_condition;
          Alcotest.test_case "cc across a block boundary" `Quick
            test_cc_across_block_boundary;
          Alcotest.test_case "loop back edge" `Quick test_loop_back_edge;
          Alcotest.test_case "computed jump keeps all live" `Quick
            test_computed_jump_all_live;
          Alcotest.test_case "constant operand fact" `Quick test_const_fact;
          Alcotest.test_case "dead register write counted" `Quick
            test_dead_reg_write_counted;
        ] );
    ]
