(* Liveness-guided superblock compilation tests.

   The liveness facts are a pure host-speed optimisation: compiling
   superblock slots with deferred condition codes, pre-folded constant
   operands and deferred dead register writes must leave every
   simulated observable bit-identical to the unguided compiler.  The
   differential suite runs every catalog workload, bare and under the
   VMM, with facts installed and without — and again with dead-store
   deferral on and off — and compares cycles (total and guest/monitor
   split), instruction counts, registers, PSL, console output, run
   outcome, TLB statistics and the full event trace.

   The solver unit tests pin down the backward analysis itself on
   directed programs: a full kill proves all four codes dead, a
   conditional branch keeps exactly its condition alive — including
   across a block boundary and around a loop back-edge — an unresolved
   computed jump forces all-live, constants fold only when vaxflow
   settles, and dead register writes are counted and (for R0..R13)
   recorded for block-exit deferral.  The summary tests pin the
   interprocedural pass: a callee's (gen, kill, clobber) summary lets a
   caller-side write stay provably dead across a resolved JSB/BSBB
   site, a computed call falls back to all-live, and a callee that
   moves the stack pointer escapes to top.

   The runtime tests cover the two ways a deferred or folded fact can
   leak: a same-opcode byte patch (self-modifying code that rewrites an
   operand specifier without changing the opcode) must reject the stale
   fact through the page-generation stamp plus byte verification, and
   an interrupt delivered mid-block must materialize deferred register
   writes before the handler can observe them. *)

open Vax_arch
open Vax_cpu
open Vax_workloads
open Vax_analysis
module Asm = Vax_asm.Asm
module Disasm = Vax_asm.Disasm
module Trace = Vax_obs.Trace

let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Differential suite: facts on vs. facts off, everything observable *)

type summary = {
  outcome : string;
  total : int;
  guest : int;
  monitor : int;
  instrs : int;
  console : string;
  regs : int list;
  psl : int;
  tlb : int * int * int;
  trace_total : int;
  trace_events : string list;
}

let enable_trace (m : Vax_dev.Machine.t) =
  Trace.set_enabled m.Vax_dev.Machine.trace true

let summarize (m : Runner.measurement) =
  let mach = m.Runner.machine in
  let st = mach.Vax_dev.Machine.cpu in
  let tlb = Vax_mem.Mmu.tlb mach.Vax_dev.Machine.mmu in
  let tr = mach.Vax_dev.Machine.trace in
  let evs = ref [] in
  Trace.iter_retained tr (fun ~seq k ~a ~b ~c ->
      evs :=
        Printf.sprintf "%d:%s:%d:%d:%d" seq (Trace.kind_name k) a b c :: !evs);
  {
    outcome = Format.asprintf "%a" Vax_dev.Machine.pp_outcome m.Runner.outcome;
    total = m.Runner.total_cycles;
    guest = m.Runner.guest_cycles;
    monitor = m.Runner.monitor_cycles;
    instrs = m.Runner.instructions;
    console = m.Runner.console;
    regs = List.init 16 (State.reg st);
    psl = st.State.psl;
    tlb = (Vax_mem.Tlb.hits tlb, Vax_mem.Tlb.misses tlb, Vax_mem.Tlb.evictions tlb);
    trace_total = Trace.total tr;
    trace_events = List.rev !evs;
  }

let check_summary name a b =
  Alcotest.(check string) (name ^ ": outcome") a.outcome b.outcome;
  check_int (name ^ ": total cycles") a.total b.total;
  check_int (name ^ ": guest cycles") a.guest b.guest;
  check_int (name ^ ": monitor cycles") a.monitor b.monitor;
  check_int (name ^ ": instructions") a.instrs b.instrs;
  Alcotest.(check string) (name ^ ": console") a.console b.console;
  Alcotest.(check (list int)) (name ^ ": registers") a.regs b.regs;
  check_int (name ^ ": psl") a.psl b.psl;
  let ah, am, ae = a.tlb and bh, bm, be = b.tlb in
  check_int (name ^ ": tlb hits") ah bh;
  check_int (name ^ ": tlb misses") am bm;
  check_int (name ^ ": tlb evictions") ae be;
  check_int (name ^ ": trace total") a.trace_total b.trace_total;
  Alcotest.(check (list string)) (name ^ ": trace events") a.trace_events
    b.trace_events

let test_bare_differential () =
  List.iter
    (fun w ->
      let built = Catalog.build w in
      let on =
        summarize
          (Runner.run_bare ~instrument:enable_trace ~liveness:true built)
      in
      let off =
        summarize
          (Runner.run_bare ~instrument:enable_trace ~liveness:false built)
      in
      check_summary ("bare " ^ w) off on)
    Catalog.names

let test_vm_differential () =
  List.iter
    (fun w ->
      let built = Catalog.build w in
      let on =
        summarize (Runner.run_vm ~instrument:enable_trace ~liveness:true built)
      in
      let off =
        summarize
          (Runner.run_vm ~instrument:enable_trace ~liveness:false built)
      in
      check_summary ("vm " ^ w) off on)
    Catalog.names

let test_two_vm_differential () =
  let b1 = Catalog.build "editing" and b2 = Catalog.build "transaction" in
  let run liveness =
    let m1, m2 =
      Runner.run_two_vms ~instrument:enable_trace ~liveness b1 b2
    in
    (summarize m1, summarize m2)
  in
  let on1, on2 = run true and off1, off2 = run false in
  check_summary "two-vms vm1" off1 on1;
  check_summary "two-vms vm2" off2 on2

(* Dead-store deferral on vs. off, liveness facts installed in both
   runs: the elision itself must be architecturally invisible. *)
let test_bare_dead_store_differential () =
  List.iter
    (fun w ->
      let built = Catalog.build w in
      let on =
        summarize
          (Runner.run_bare ~instrument:enable_trace ~liveness:true
             ~dead_store:true built)
      in
      let off =
        summarize
          (Runner.run_bare ~instrument:enable_trace ~liveness:true
             ~dead_store:false built)
      in
      check_summary ("bare dead-store " ^ w) off on)
    Catalog.names

let test_vm_dead_store_differential () =
  List.iter
    (fun w ->
      let built = Catalog.build w in
      let on =
        summarize
          (Runner.run_vm ~instrument:enable_trace ~liveness:true
             ~dead_store:true built)
      in
      let off =
        summarize
          (Runner.run_vm ~instrument:enable_trace ~liveness:true
             ~dead_store:false built)
      in
      check_summary ("vm dead-store " ^ w) off on)
    Catalog.names

let test_two_vm_dead_store_differential () =
  let b1 = Catalog.build "editing" and b2 = Catalog.build "transaction" in
  let run dead_store =
    let m1, m2 =
      Runner.run_two_vms ~instrument:enable_trace ~liveness:true ~dead_store b1
        b2
    in
    (summarize m1, summarize m2)
  in
  let on1, on2 = run true and off1, off2 = run false in
  check_summary "two-vms dead-store vm1" off1 on1;
  check_summary "two-vms dead-store vm2" off2 on2

(* The facts must actually engage on the workloads, otherwise the
   differential above proves nothing. *)
let test_facts_engage () =
  let built = Catalog.build "mix" in
  let m = Runner.run_bare ~liveness:true built in
  let bc = m.Runner.machine.Vax_dev.Machine.bcache in
  Alcotest.(check bool) "facts installed" true (bc.Block_cache.facts <> None);
  Alcotest.(check bool) "fact slots" true (bc.Block_cache.fact_slots > 0);
  Alcotest.(check bool) "cc elided" true (bc.Block_cache.cc_elided > 0);
  let off = Runner.run_bare ~liveness:false built in
  let bco = off.Runner.machine.Vax_dev.Machine.bcache in
  Alcotest.(check bool) "no facts when off" true (bco.Block_cache.facts = None);
  check_int "no fact slots when off" 0 bco.Block_cache.fact_slots

(* The call-heavy workload is the stress case for the interprocedural
   pass: its callee summaries must solve every resolved call site, its
   caller-side dead writes must be detected across those sites, and the
   compiled blocks must actually defer them. *)
let test_dead_store_engages () =
  let built = Catalog.build "calls" in
  let m = Runner.run_bare ~liveness:true ~dead_store:true built in
  let bc = m.Runner.machine.Vax_dev.Machine.bcache in
  let facts =
    match bc.Block_cache.facts with
    | Some f -> f
    | None -> Alcotest.fail "facts not installed"
  in
  Alcotest.(check bool) "summary calls solved" true
    (facts.Block_facts.summary_calls > 0);
  check_int "no summary fallbacks on calls" 0
    facts.Block_facts.summary_fallbacks;
  Alcotest.(check bool) "dead write sites found" true
    (Block_facts.dead_write_sites facts >= 2);
  Alcotest.(check bool) "dead writes deferred at runtime" true
    (bc.Block_cache.dead_writes_elided > 0);
  let off = Runner.run_bare ~liveness:true ~dead_store:false built in
  let bco = off.Runner.machine.Vax_dev.Machine.bcache in
  check_int "nothing deferred when dead-store is off" 0
    bco.Block_cache.dead_writes_elided

(* ------------------------------------------------------------------ *)
(* Solver unit tests on directed programs *)

let image_of ~origin f =
  let a = Asm.create ~origin in
  f a;
  let img = Asm.assemble a in
  { (Cfg.of_asm "t" img) with Cfg.entries = [ origin ] }

(* The fact recorded at the first instruction with [op], via the same
   CFG recovery the pass itself uses. *)
let fact_at facts image op =
  let cfg = Cfg.analyze image in
  let insns =
    List.sort_uniq compare
      (List.concat_map
         (fun (b : Cfg.block) ->
           List.map (fun (i : Disasm.insn) -> (i.Disasm.address, i)) b.Cfg.b_insns)
         cfg.Cfg.blocks)
  in
  match List.find_opt (fun (_, i) -> i.Disasm.opcode = Some op) insns with
  | None -> Alcotest.fail "opcode not found in recovered CFG"
  | Some (va, i) ->
      Block_facts.find facts ~va ~op ~len:i.Disasm.length

let cc_dead facts image op =
  match fact_at facts image op with
  | None -> Alcotest.fail "no fact at site"
  | Some f -> f.Block_facts.f_cc_dead

let nvc = Block_facts.n_bit lor Block_facts.v_bit lor Block_facts.c_bit

(* A straight line that overwrites every code before any read: all four
   bits are dead after the arithmetic op (MOVL keeps C, but the TSTL
   then kills it unread). *)
let test_full_kill () =
  let image =
    image_of ~origin:0x1000 (fun a ->
        Asm.ins a Opcode.Addl2 [ Asm.R 1; Asm.R 0 ];
        Asm.ins a Opcode.Movl [ Asm.Imm 5; Asm.R 2 ];
        Asm.ins a Opcode.Tstl [ Asm.R 2 ];
        Asm.ins a Opcode.Bneq [ Asm.Branch "end" ];
        Asm.label a "end";
        Asm.ins a Opcode.Halt [])
  in
  let facts, _ = Liveness.facts_of_images [ image ] in
  check_int "all codes dead after ADDL2" Block_facts.all_cc
    (cc_dead facts image Opcode.Addl2)

(* A conditional branch keeps exactly its condition alive: both arms of
   the BNEQ kill the codes immediately, so after the CMPL only Z (read
   by the branch) survives. *)
let test_branch_keeps_condition () =
  let image =
    image_of ~origin:0x1000 (fun a ->
        Asm.ins a Opcode.Cmpl [ Asm.R 0; Asm.R 1 ];
        Asm.ins a Opcode.Bneq [ Asm.Branch "taken" ];
        Asm.ins a Opcode.Tstl [ Asm.R 3 ];
        Asm.ins a Opcode.Brb [ Asm.Branch "end" ];
        Asm.label a "taken";
        Asm.ins a Opcode.Tstl [ Asm.R 4 ];
        Asm.label a "end";
        Asm.ins a Opcode.Halt [])
  in
  let facts, _ = Liveness.facts_of_images [ image ] in
  check_int "N, V, C dead after CMPL; Z live" nvc
    (cc_dead facts image Opcode.Cmpl)

(* The condition must survive a block boundary: the INCL's Z is read by
   a branch in the *next* block (after an unconditional BRB). *)
let test_cc_across_block_boundary () =
  let image =
    image_of ~origin:0x1000 (fun a ->
        Asm.ins a Opcode.Incl [ Asm.R 0 ];
        Asm.ins a Opcode.Brb [ Asm.Branch "l1" ];
        Asm.label a "l1";
        Asm.ins a Opcode.Bneq [ Asm.Branch "l2" ];
        Asm.ins a Opcode.Tstl [ Asm.R 1 ];
        Asm.label a "l2";
        Asm.ins a Opcode.Tstl [ Asm.R 2 ];
        Asm.ins a Opcode.Halt [])
  in
  let facts, _ = Liveness.facts_of_images [ image ] in
  check_int "Z flows across the BRB boundary" nvc
    (cc_dead facts image Opcode.Incl)

(* A loop: Z stays live around the back edge (the BNEQ reads what the
   DECL of the *next* iteration wrote), N/V/C die on both the back edge
   (DECL is a full writer) and the exit (TSTL).  The loop counter stays
   live at the loop head. *)
let test_loop_back_edge () =
  let origin = 0x1000 in
  let image =
    image_of ~origin (fun a ->
        Asm.ins a Opcode.Movl [ Asm.Imm 3; Asm.R 1 ];
        Asm.label a "loop";
        Asm.ins a Opcode.Decl [ Asm.R 1 ];
        Asm.ins a Opcode.Bneq [ Asm.Branch "loop" ];
        Asm.ins a Opcode.Tstl [ Asm.R 2 ];
        Asm.ins a Opcode.Halt [])
  in
  let facts, _ = Liveness.facts_of_images [ image ] in
  check_int "only Z live after DECL in the loop" nvc
    (cc_dead facts image Opcode.Decl);
  (* the entry block's solved live-out is the loop head's live-in: the
     counter register must be in it *)
  let cfg = Cfg.analyze image in
  let liveouts, _ = Liveness.solve_image cfg in
  match Hashtbl.find_opt liveouts origin with
  | None -> Alcotest.fail "entry block not solved"
  | Some m ->
      Alcotest.(check bool) "R1 live at loop head" true
        (Liveness.regs_of m land (1 lsl 1) <> 0)

(* An unresolved computed jump is an unknown successor: everything is
   live behind it, so the ADDL2 keeps all four codes. *)
let test_computed_jump_all_live () =
  let image =
    image_of ~origin:0x1000 (fun a ->
        Asm.ins a Opcode.Addl2 [ Asm.R 1; Asm.R 2 ];
        Asm.ins a Opcode.Jmp [ Asm.Deref 0 ])
  in
  let facts, _ = Liveness.facts_of_images [ image ] in
  check_int "nothing dead before a computed jump" 0
    (cc_dead facts image Opcode.Addl2)

(* Constant folding: vaxflow proves R0 = 5 at the ADDL2's read, the
   workload settles, so the fact carries the folded operand. *)
let test_const_fact () =
  let image =
    image_of ~origin:0x1000 (fun a ->
        Asm.ins a Opcode.Movl [ Asm.Imm 5; Asm.R 0 ];
        Asm.ins a Opcode.Addl2 [ Asm.R 0; Asm.R 1 ];
        Asm.ins a Opcode.Halt [])
  in
  let facts, stats = Liveness.facts_of_images [ image ] in
  Alcotest.(check bool) "analysis settled" true stats.Liveness.mode_sound;
  match fact_at facts image Opcode.Addl2 with
  | None -> Alcotest.fail "no fact at ADDL2"
  | Some f ->
      Alcotest.(check (list (pair int int)))
        "operand 0 folded to 5"
        [ (0, 5) ]
        f.Block_facts.f_consts

(* Dead register writes are counted, and — for R0..R13 — recorded in
   the per-fact deferral mask the slot compiler consumes. *)
let test_dead_reg_write_counted () =
  let image =
    image_of ~origin:0x1000 (fun a ->
        Asm.ins a Opcode.Movl [ Asm.Imm 1; Asm.R 5 ];
        Asm.ins a Opcode.Movl [ Asm.Imm 2; Asm.R 5 ];
        Asm.ins a Opcode.Tstl [ Asm.R 5 ];
        Asm.ins a Opcode.Halt [])
  in
  let facts, _ = Liveness.facts_of_images [ image ] in
  Alcotest.(check bool) "first write to R5 detected dead" true
    (facts.Block_facts.dead_reg_writes >= 1);
  match fact_at facts image Opcode.Movl with
  | None -> Alcotest.fail "no fact at the dead MOVL"
  | Some f ->
      check_int "R5 recorded in the deferral mask" (1 lsl 5)
        (f.Block_facts.f_dead_regs land (1 lsl 5))

(* ------------------------------------------------------------------ *)
(* Interprocedural summary tests *)

(* A write that is dead only because the callee's summary proves the
   callee never reads the register: without the interprocedural pass
   the BSBB would force all-live and the first MOVL would stay live.
   This is the fact-survives-a-call-site property the whole pass
   exists for. *)
let test_dead_across_call () =
  let image =
    image_of ~origin:0x1000 (fun a ->
        Asm.ins a Opcode.Movl [ Asm.Imm 1; Asm.R 5 ];
        Asm.ins a Opcode.Bsbb [ Asm.Branch "leaf" ];
        Asm.ins a Opcode.Movl [ Asm.Imm 2; Asm.R 5 ];
        Asm.ins a Opcode.Tstl [ Asm.R 5 ];
        Asm.ins a Opcode.Halt [];
        Asm.label a "leaf";
        Asm.ins a Opcode.Movl [ Asm.Imm 9; Asm.R 0 ];
        Asm.ins a Opcode.Rsb [])
  in
  let facts, _ = Liveness.facts_of_images [ image ] in
  Alcotest.(check bool) "call site solved through the summary" true
    (facts.Block_facts.summary_calls >= 1);
  check_int "no fallback on a resolved call" 0
    facts.Block_facts.summary_fallbacks;
  match fact_at facts image Opcode.Movl with
  | None -> Alcotest.fail "no fact at the MOVL before the call"
  | Some f ->
      check_int "R5 write dead across the BSBB" (1 lsl 5)
        (f.Block_facts.f_dead_regs land (1 lsl 5))

(* The same caller with a computed callee: no summary applies, the
   call is all-read/all-clobbered, and the write before it stays
   live. *)
let test_computed_call_fallback () =
  let image =
    image_of ~origin:0x1000 (fun a ->
        Asm.ins a Opcode.Movl [ Asm.Imm 1; Asm.R 5 ];
        Asm.ins a Opcode.Jsb [ Asm.Deref 0 ];
        Asm.ins a Opcode.Movl [ Asm.Imm 2; Asm.R 5 ];
        Asm.ins a Opcode.Tstl [ Asm.R 5 ];
        Asm.ins a Opcode.Halt [])
  in
  let facts, _ = Liveness.facts_of_images [ image ] in
  check_int "no summary solves a computed call" 0
    facts.Block_facts.summary_calls;
  match fact_at facts image Opcode.Movl with
  | None -> ()
  | Some f ->
      check_int "R5 stays live into the unknown callee" 0
        (f.Block_facts.f_dead_regs land (1 lsl 5))

(* The summary lattice on a directed leaf: reads R1 (and SP through
   the RSB), kills and clobbers R0, leaves R5 untouched. *)
let test_leaf_summary () =
  let origin = 0x1000 in
  let image =
    image_of ~origin (fun a ->
        Asm.ins a Opcode.Movl [ Asm.Imm 9; Asm.R 0 ];
        Asm.ins a Opcode.Xorl2 [ Asm.R 1; Asm.R 0 ];
        Asm.ins a Opcode.Rsb [])
  in
  let t = Summaries.of_cfg (Cfg.analyze image) in
  match Summaries.find t origin with
  | None -> Alcotest.fail "no summary at the leaf entry"
  | Some s ->
      Alcotest.(check bool) "usable" true (Summaries.usable s);
      Alcotest.(check bool) "reads R1" true
        (s.Summaries.sg land Summaries.reg_bit 1 <> 0);
      check_int "does not read R0" 0 (s.Summaries.sg land Summaries.reg_bit 0);
      Alcotest.(check bool) "kills R0" true
        (s.Summaries.sk land Summaries.reg_bit 0 <> 0);
      Alcotest.(check bool) "clobbers R0" true (s.Summaries.sc land 1 <> 0);
      check_int "does not clobber R5" 0 (s.Summaries.sc land (1 lsl 5))

(* A callee that moves the stack pointer breaks the well-behaved-stack
   assumption the lattice rests on: its summary must escape to top and
   never be applied at a call site. *)
let test_sp_write_escapes () =
  let origin = 0x1000 in
  let image =
    image_of ~origin (fun a ->
        Asm.ins a Opcode.Movl [ Asm.Imm 0x800; Asm.R 14 ];
        Asm.ins a Opcode.Rsb [])
  in
  let t = Summaries.of_cfg (Cfg.analyze image) in
  match Summaries.find t origin with
  | None -> Alcotest.fail "no summary at the leaf entry"
  | Some s ->
      Alcotest.(check bool) "summary escapes to top" true (Summaries.is_top s);
      Alcotest.(check bool) "never usable at a call site" false
        (Summaries.usable s)

(* ------------------------------------------------------------------ *)
(* Runtime: stale facts and deferred writes under fire *)

let boot ~engine ?facts ?(origin = 0x1000) f =
  let cpu = Cpu.create ~engine () in
  let a = Asm.create ~origin in
  f a;
  let img = Asm.assemble a in
  Cpu.load cpu img.Vax_asm.Asm.image_origin img.Vax_asm.Asm.code;
  (match facts with
  | Some fc -> cpu.Cpu.bcache.Block_cache.facts <- Some fc
  | None -> ());
  State.set_pc cpu.Cpu.state origin;
  State.set_sp cpu.Cpu.state 0x2000;
  (cpu, img)

let cpu_summary (cpu : Cpu.t) =
  ( List.init 16 (State.reg cpu.Cpu.state),
    cpu.Cpu.state.State.psl,
    Cycles.now cpu.Cpu.clock,
    cpu.Cpu.state.State.instructions )

(* Self-modifying code that rewrites an operand specifier of an
   already-analyzed instruction without changing its opcode or length:
   the ADDL2's first operand was proven constant 5 (vaxflow folds R0),
   and the patch retargets it to R3 = 9.  The op/len guard alone
   cannot catch this — only the page-generation stamp plus byte
   verification can.  A stale fold would add 5 instead of 9 on the
   second iteration. *)
let smc_program addl2_addr a =
  Asm.ins a Opcode.Movl [ Asm.Imm 2; Asm.R 2 ];
  Asm.ins a Opcode.Movl [ Asm.Imm 5; Asm.R 0 ];
  Asm.ins a Opcode.Movl [ Asm.Imm 9; Asm.R 3 ];
  Asm.label a "loop";
  Asm.ins a Opcode.Clrl [ Asm.R 1 ];
  addl2_addr := Asm.here a;
  Asm.ins a Opcode.Addl2 [ Asm.R 0; Asm.R 1 ];
  (* 0x53 is the register-mode specifier for R3: same opcode, same
     length, different operand *)
  Asm.ins a Opcode.Movb [ Asm.Imm 0x53; Asm.Abs (!addl2_addr + 1) ];
  Asm.ins a Opcode.Sobgtr [ Asm.R 2; Asm.Branch "loop" ];
  Asm.ins a Opcode.Halt []

let test_smc_same_opcode_patch () =
  let addl2_addr = ref 0 in
  let prog = smc_program addl2_addr in
  let image = image_of ~origin:0x1000 prog in
  let facts, _ = Liveness.facts_of_images [ image ] in
  (* the stale fact really is dangerous: it folds the patched operand *)
  (match fact_at facts image Opcode.Addl2 with
  | None -> Alcotest.fail "no fact at the ADDL2"
  | Some f ->
      Alcotest.(check (list (pair int int)))
        "operand 0 folded to 5 pre-patch"
        [ (0, 5) ]
        f.Block_facts.f_consts);
  let run engine facts' =
    let cpu, _ = boot ~engine ?facts:facts' prog in
    (match Cpu.run cpu ~max_instructions:1000 () with
    | Exec.Machine_halted -> ()
    | _ -> Alcotest.fail "no halt");
    cpu_summary cpu
  in
  let rs, ps, cs, is = run Exec.Stepper None in
  let rb, pb, cb, ib = run Exec.Blocks (Some facts) in
  Alcotest.(check (list int)) "registers" rs rb;
  check_int "psl" ps pb;
  check_int "cycles" cs cb;
  check_int "instructions" is ib;
  (* iteration 1 adds the folded 5; iteration 2 must add R3 = 9 *)
  check_int "patched operand re-read, stale fact rejected" 9 (List.nth rb 1)

(* An interrupt delivered mid-block must observe deferred register
   writes: the MNEGL's destination is dead on every synchronous path
   (the MOVL below rewrites R0 before any read) so the compiled slot
   defers it into the shadow — but the handler reads R0
   asynchronously, and exception delivery must materialize the shadow
   first.  Compared against the per-step interpreter for several
   posting offsets inside the loop body. *)
let deferred_interrupt_program a =
  Asm.ins a Opcode.Mtpr [ Asm.Imm 0x8000; Asm.Imm (Ipr.to_int Ipr.SCBB) ];
  Asm.ins a Opcode.Moval [ Asm.Abs_label "handler"; Asm.R 6 ];
  Asm.ins a Opcode.Movl [ Asm.R 6; Asm.Abs (0x8000 + Scb.interval_timer) ];
  Asm.ins a Opcode.Mtpr [ Asm.Imm 0; Asm.Imm (Ipr.to_int Ipr.IPL) ];
  Asm.ins a Opcode.Movl [ Asm.Imm 40; Asm.R 2 ];
  Asm.label a "loop";
  Asm.ins a Opcode.Mnegl [ Asm.R 2; Asm.R 0 ];
  for _ = 1 to 4 do
    Asm.ins a Opcode.Incl [ Asm.R 1 ]
  done;
  Asm.ins a Opcode.Movl [ Asm.Imm 7; Asm.R 0 ];
  Asm.ins a Opcode.Addl2 [ Asm.R 0; Asm.R 1 ];
  Asm.ins a Opcode.Sobgtr [ Asm.R 2; Asm.Branch "loop" ];
  Asm.ins a Opcode.Halt [];
  Asm.align a 4;
  Asm.label a "handler";
  Asm.ins a Opcode.Addl2 [ Asm.R 0; Asm.R 10 ];
  Asm.ins a Opcode.Rei []

let run_with_interrupt engine facts k =
  let cpu, _ = boot ~engine ?facts deferred_interrupt_program in
  let st = cpu.Cpu.state in
  for _ = 1 to k do
    ignore (Cpu.step cpu)
  done;
  State.post_interrupt st ~ipl:22 ~vector:Scb.interval_timer;
  let delivery = ref (-1, -1) in
  let rec go n =
    if n = 0 then Alcotest.fail "no halt";
    if st.State.interrupts_taken > 0 && !delivery = (-1, -1) then
      delivery := (Cycles.now cpu.Cpu.clock, st.State.instructions);
    match Cpu.step cpu with Exec.Machine_halted -> () | _ -> go (n - 1)
  in
  go 5000;
  check_int "interrupt delivered once" 1 st.State.interrupts_taken;
  (cpu_summary cpu, !delivery, cpu.Cpu.bcache.Block_cache.dead_writes_elided)

let test_interrupt_materializes_deferred () =
  let image = image_of ~origin:0x1000 deferred_interrupt_program in
  let facts, _ = Liveness.facts_of_images [ image ] in
  (match fact_at facts image Opcode.Mnegl with
  | None -> Alcotest.fail "no fact at the MNEGL"
  | Some f ->
      check_int "R0 write dead on every synchronous path" 1
        (f.Block_facts.f_dead_regs land 1));
  List.iter
    (fun k ->
      let ss, sd, _ = run_with_interrupt Exec.Stepper None k in
      let bs, bd, elided = run_with_interrupt Exec.Blocks (Some facts) k in
      let rs, ps, cs, is = ss and rb, pb, cb, ib = bs in
      Alcotest.(check (list int)) (Printf.sprintf "k=%d registers" k) rs rb;
      check_int (Printf.sprintf "k=%d psl" k) ps pb;
      check_int (Printf.sprintf "k=%d final cycles" k) cs cb;
      check_int (Printf.sprintf "k=%d instructions" k) is ib;
      let dc_s, di_s = sd and dc_b, di_b = bd in
      check_int (Printf.sprintf "k=%d delivery cycle" k) dc_s dc_b;
      check_int (Printf.sprintf "k=%d delivery instruction" k) di_s di_b;
      Alcotest.(check bool)
        (Printf.sprintf "k=%d deferral engaged" k)
        true (elided > 0))
    [ 5; 6; 7; 8; 9; 11; 14; 17; 23; 42 ]

let () =
  Alcotest.run "liveness"
    [
      ( "differential",
        [
          Alcotest.test_case "bare workloads: facts = no facts" `Quick
            test_bare_differential;
          Alcotest.test_case "vm workloads: facts = no facts" `Quick
            test_vm_differential;
          Alcotest.test_case "two vms: facts = no facts" `Quick
            test_two_vm_differential;
          Alcotest.test_case "bare workloads: dead-store on = off" `Quick
            test_bare_dead_store_differential;
          Alcotest.test_case "vm workloads: dead-store on = off" `Quick
            test_vm_dead_store_differential;
          Alcotest.test_case "two vms: dead-store on = off" `Quick
            test_two_vm_dead_store_differential;
          Alcotest.test_case "facts engage" `Quick test_facts_engage;
          Alcotest.test_case "dead-store deferral engages" `Quick
            test_dead_store_engages;
        ] );
      ( "solver",
        [
          Alcotest.test_case "full kill: all codes dead" `Quick test_full_kill;
          Alcotest.test_case "branch keeps its condition" `Quick
            test_branch_keeps_condition;
          Alcotest.test_case "cc across a block boundary" `Quick
            test_cc_across_block_boundary;
          Alcotest.test_case "loop back edge" `Quick test_loop_back_edge;
          Alcotest.test_case "computed jump keeps all live" `Quick
            test_computed_jump_all_live;
          Alcotest.test_case "constant operand fact" `Quick test_const_fact;
          Alcotest.test_case "dead register write counted" `Quick
            test_dead_reg_write_counted;
        ] );
      ( "summaries",
        [
          Alcotest.test_case "write dead across a resolved call" `Quick
            test_dead_across_call;
          Alcotest.test_case "computed call falls back" `Quick
            test_computed_call_fallback;
          Alcotest.test_case "leaf summary lattice" `Quick test_leaf_summary;
          Alcotest.test_case "SP write escapes to top" `Quick
            test_sp_write_escapes;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "same-opcode byte patch rejects stale fact"
            `Quick test_smc_same_opcode_patch;
          Alcotest.test_case "interrupt materializes deferred writes" `Quick
            test_interrupt_materializes_deferred;
        ] );
    ]
