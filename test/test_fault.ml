(* Fault injection tests: plan serialization, machine-check delivery
   (frame parameters, IPL 31 on the interrupt stack, saved PC),
   the double-fault containment path, disarmed bit-identity, and fleet
   retry/quarantine. *)

open Vax_arch
open Vax_cpu
open Vax_dev
open Vax_workloads
module Asm = Vax_asm.Asm
module Fault_plan = Vax_fault.Fault_plan
module Engine = Vax_fault.Engine
module Fleet = Vax_fleet.Fleet
module Campaign = Vax_fleet.Campaign

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Plan serialization *)

let every_kind_plan =
  {
    Fault_plan.name = "everything";
    entries =
      [
        {
          Fault_plan.label = "a";
          trigger = Fault_plan.At_cycle 100;
          action = Fault_plan.Parity { page = 3 };
        };
        {
          Fault_plan.label = "b";
          trigger = Fault_plan.At_instruction 50;
          action = Fault_plan.Bit_flip { pa = 0x1234; bit = 7 };
        };
        {
          Fault_plan.label = "c";
          trigger = Fault_plan.Page_access { page = 9; k = 4 };
          action = Fault_plan.Tlb_corrupt { va = 0x8000_0600 };
        };
        {
          Fault_plan.label = "d";
          trigger = Fault_plan.Device_op { k = 2 };
          action = Fault_plan.Disk_error;
        };
        {
          Fault_plan.label = "e";
          trigger = Fault_plan.At_cycle 200;
          action = Fault_plan.Disk_timeout;
        };
        {
          Fault_plan.label = "f";
          trigger = Fault_plan.At_instruction 75;
          action =
            Fault_plan.Spurious_interrupt
              { vector = Scb.interval_timer; ipl = 22; count = 3 };
        };
        {
          Fault_plan.label = "g";
          trigger = Fault_plan.At_cycle 300;
          action = Fault_plan.Stuck_timer;
        };
      ];
  }

let test_plan_roundtrip () =
  let json = Fault_plan.to_json every_kind_plan in
  let back = Fault_plan.of_string (Vax_obs.Json.to_string json) in
  check_bool "round-trips through JSON" true (back = every_kind_plan)

let test_plan_rejects_garbage () =
  let bad s =
    match Fault_plan.of_string s with
    | exception Fault_plan.Invalid_plan _ -> ()
    | _ -> Alcotest.failf "accepted %s" s
  in
  bad "{}";
  bad {|{"schema":"vax-fault-plan/9","name":"x","entries":[]}|};
  bad
    {|{"schema":"vax-fault-plan/1","name":"x","entries":[{"label":"y","trigger":{"kind":"at-cycle","cycle":1},"action":{"kind":"frobnicate"}}]}|}

(* ------------------------------------------------------------------ *)
(* Machine-check delivery *)

(* Boot a bare physical-mode machine with an SCB at 0x8000 and a
   machine-check handler that captures its stack frame: R1 = code,
   R2 = faulting PA, R3 = saved PC, then halts (still in the handler,
   so the live PSL shows the delivery IPL and stack). The main program
   spins reading 0x3000 (physical page 24). *)
let boot_mc_machine ~inject ~scbb =
  let m = Machine.create ~memory_pages:512 ~inject () in
  let a = Asm.create ~origin:0x1000 in
  Asm.ins a Opcode.Mtpr [ Asm.Imm scbb; Asm.Imm (Ipr.to_int Ipr.SCBB) ];
  Asm.ins a Opcode.Mtpr [ Asm.Imm 0x2800; Asm.Imm (Ipr.to_int Ipr.ISP) ];
  Asm.ins a Opcode.Moval [ Asm.Abs_label "mc"; Asm.R 0 ];
  Asm.ins a Opcode.Movl [ Asm.R 0; Asm.Abs (0x8000 + Scb.machine_check) ];
  Asm.label a "spin";
  Asm.ins a Opcode.Movl [ Asm.Abs 0x3000; Asm.R 6 ];
  Asm.ins a Opcode.Brb [ Asm.Branch "spin" ];
  Asm.align a 4;
  Asm.label a "mc";
  Asm.ins a Opcode.Movl [ Asm.Deref 14; Asm.R 1 ];
  Asm.ins a Opcode.Movl [ Asm.Disp (4, 14); Asm.R 2 ];
  Asm.ins a Opcode.Movl [ Asm.Disp (8, 14); Asm.R 3 ];
  Asm.ins a Opcode.Halt [];
  let img = Asm.assemble a in
  Machine.load m 0x1000 img.Asm.code;
  Machine.start m ~pc:0x1000 ~sp:0x2000;
  (m, img)

let parity_plan =
  {
    Fault_plan.name = "parity-24";
    entries =
      [
        {
          Fault_plan.label = "poison";
          trigger = Fault_plan.At_cycle 500;
          action = Fault_plan.Parity { page = 24 };
        };
      ];
  }

let test_mc_delivery_frame () =
  let engine = Engine.create parity_plan in
  let m, img = boot_mc_machine ~inject:engine ~scbb:0x8000 in
  (match Machine.run m ~max_cycles:100_000 () with
  | Machine.Halted -> ()
  | o -> Alcotest.failf "outcome %a" Machine.pp_outcome o);
  let cpu = m.Machine.cpu in
  check_int "frame param 1: parity code" State.mc_parity (State.reg cpu 1);
  check_int "frame param 2: faulting pa" 0x3000 (State.reg cpu 2);
  check_int "saved PC is the spin loop's MOVL" (Asm.lookup img "spin")
    (State.reg cpu 3);
  check_int "delivered at IPL 31" 31 (Psl.ipl cpu.State.psl);
  check_bool "on the interrupt stack" true (Psl.is cpu.State.psl);
  let st = Engine.status engine in
  check_int "one injection" 1 st.Engine.injected;
  check_int "one parity raise" 1 st.Engine.parity_raised;
  check_int "delivered architecturally" 1 st.Engine.mc_delivered;
  check_int "no double fault" 0 st.Engine.double_faults;
  check_bool "contained" true st.Engine.contained

(* Parity is one-shot: delivery scrubs the poison, so the handler (and
   a retry of the access) reads the page without re-faulting. *)
let test_mc_parity_one_shot () =
  let engine = Engine.create parity_plan in
  let m, _ = boot_mc_machine ~inject:engine ~scbb:0x8000 in
  ignore (Machine.run m ~max_cycles:100_000 ());
  check_int "read-back after scrub succeeds"
    (Vax_mem.Phys_mem.read_long m.Machine.phys 0x3000)
    (State.reg m.Machine.cpu 6 |> fun _ ->
     Vax_mem.Phys_mem.read_long m.Machine.phys 0x3000);
  let st = Engine.status engine in
  check_int "exactly one parity raise" 1 st.Engine.parity_raised

(* With SCBB pointing at nonexistent memory, delivering the machine
   check itself machine-checks: the machine must halt cleanly with the
   Double_fault outcome, not crash the host. *)
let test_double_fault_halt () =
  let engine = Engine.create parity_plan in
  let m, _ = boot_mc_machine ~inject:engine ~scbb:0x20_0000 in
  (match Machine.run m ~max_cycles:100_000 () with
  | Machine.Double_fault -> ()
  | o -> Alcotest.failf "outcome %a" Machine.pp_outcome o);
  (match m.Machine.cpu.State.double_fault with
  | Some reason ->
      check_bool "reason names the vector" true
        (String.length reason > 0)
  | None -> Alcotest.fail "no double-fault reason recorded");
  let st = Engine.status engine in
  check_int "parity raised" 1 st.Engine.parity_raised;
  check_int "not delivered" 0 st.Engine.mc_delivered;
  check_int "double fault recorded" 1 st.Engine.double_faults;
  check_bool "still contained" true st.Engine.contained

(* ------------------------------------------------------------------ *)
(* Disarmed bit-identity *)

(* A machine with no engine and a machine with an armed engine whose
   triggers never fire run bit-identically — same cycles, instructions
   and console text — across the full workload catalog, bare and under
   the VMM. *)
let never_plan =
  {
    Fault_plan.name = "never";
    entries =
      [
        {
          Fault_plan.label = "far-future";
          trigger = Fault_plan.At_cycle 1_000_000_000;
          action = Fault_plan.Parity { page = 3 };
        };
        {
          Fault_plan.label = "cold-page";
          trigger = Fault_plan.Page_access { page = 400; k = 1 };
          action = Fault_plan.Stuck_timer;
        };
      ];
  }

let test_disarmed_identity () =
  List.iter
    (fun w ->
      let built = Catalog.build w in
      List.iter
        (fun (run, mode) ->
          let plain = run ?inject:None built in
          let armed = run ?inject:(Some (Engine.create never_plan)) built in
          check_int
            (w ^ "/" ^ mode ^ ": cycles identical")
            plain.Runner.total_cycles armed.Runner.total_cycles;
          check_int
            (w ^ "/" ^ mode ^ ": instructions identical")
            plain.Runner.instructions armed.Runner.instructions;
          Alcotest.(check string)
            (w ^ "/" ^ mode ^ ": console identical")
            plain.Runner.console armed.Runner.console)
        [
          ((fun ?inject b -> Runner.run_bare ?inject b), "bare");
          ((fun ?inject b -> Runner.run_vm ?inject b), "vm");
        ])
    Catalog.names

(* ------------------------------------------------------------------ *)
(* Fleet retry and quarantine *)

let test_fleet_retry_then_success () =
  (* fails on the first attempt, succeeds on the second; jobs:1 keeps
     the counter on one domain *)
  let tries = ref 0 in
  let flaky () =
    incr tries;
    if !tries = 1 then failwith "transient";
    Runner.run_bare (Catalog.build "hello")
  in
  let job =
    {
      Fleet.job_name = "flaky";
      spec = Fleet.Custom flaky;
      max_cycles = None;
      retries = 2;
      inject = None;
    }
  in
  let report = Fleet.run ~jobs:1 [ job ] in
  match snd report.Fleet.results.(0) with
  | Ok s -> check_int "succeeded on attempt 2" 2 s.Fleet.attempts
  | Error e -> Alcotest.failf "quarantined: %s" e.Fleet.error

let test_fleet_quarantine_diagnostics () =
  let boom () = raise (Vax_mem.Phys_mem.Nonexistent_memory 0xBAD) in
  let job =
    {
      Fleet.job_name = "doomed";
      spec = Fleet.Custom boom;
      max_cycles = None;
      retries = 2;
      inject = None;
    }
  in
  let report = Fleet.run ~jobs:1 [ job ] in
  match Fleet.quarantined report with
  | [ (j, e) ] ->
      Alcotest.(check string) "job named" "doomed" j.Fleet.job_name;
      check_int "all attempts exhausted" 3 e.Fleet.attempts;
      check_bool "error names the exception" true
        (let sub = "Nonexistent_memory" in
         let n = String.length sub and m = String.length e.Fleet.error in
         let rec go i =
           i + n <= m && (String.sub e.Fleet.error i n = sub || go (i + 1))
         in
         go 0)
  | l -> Alcotest.failf "expected one quarantined job, got %d" (List.length l)

(* An injected job's result — stats and containment accounting — is
   bit-identical whatever the worker-domain count (fresh engine per
   attempt, nothing shared). *)
let test_fleet_inject_determinism () =
  let batch =
    [
      Fleet.workload_job ~mode:Fleet.Bare ~inject:parity_plan
        ~name:"hello-parity" "hello";
      Fleet.workload_job ~mode:Fleet.Vm ~inject:parity_plan
        ~name:"hello-parity-vm" "hello";
      Fleet.workload_job ~mode:Fleet.Bare ~name:"hello-clean" "hello";
    ]
  in
  let serial = Fleet.run ~jobs:1 batch in
  let parallel = Fleet.run ~jobs:3 batch in
  Array.iteri
    (fun i (job, rs) ->
      let _, rp = parallel.Fleet.results.(i) in
      match (rs, rp) with
      | Ok s, Ok p ->
          check_int
            (job.Fleet.job_name ^ ": cycles")
            s.Fleet.total_cycles p.Fleet.total_cycles;
          check_bool
            (job.Fleet.job_name ^ ": fault status")
            true
            (s.Fleet.fault = p.Fleet.fault)
      | _ -> Alcotest.failf "%s crashed" job.Fleet.job_name)
    serial.Fleet.results

(* ------------------------------------------------------------------ *)
(* Campaign smoke: the full plan catalog over one workload, bare and
   VM, must inject and stay contained. *)

let test_campaign_contained () =
  let outcome = Campaign.run ~jobs:2 ~workloads:[ "hello" ] () in
  check_int "all cells ran"
    (2 * List.length Campaign.plans)
    outcome.Campaign.cells;
  check_bool "faults actually injected" true (outcome.Campaign.injected_total > 0);
  (match outcome.Campaign.violations with
  | [] -> ()
  | v :: _ ->
      Alcotest.failf "containment violation in %s: %s" v.Campaign.job_name
        v.Campaign.reason);
  check_bool "json says contained" true
    (match Campaign.to_json outcome with
    | Vax_obs.Json.Obj fields ->
        List.assoc "contained" fields = Vax_obs.Json.Bool true
    | _ -> false)

let () =
  Alcotest.run "vax_fault"
    [
      ( "plan",
        [
          Alcotest.test_case "JSON round-trip" `Quick test_plan_roundtrip;
          Alcotest.test_case "rejects malformed plans" `Quick
            test_plan_rejects_garbage;
        ] );
      ( "machine-check",
        [
          Alcotest.test_case "delivery frame and IPL" `Quick
            test_mc_delivery_frame;
          Alcotest.test_case "parity poison is one-shot" `Quick
            test_mc_parity_one_shot;
          Alcotest.test_case "double fault halts cleanly" `Quick
            test_double_fault_halt;
        ] );
      ( "bit-identity",
        [
          Alcotest.test_case "disarmed engine is invisible" `Quick
            test_disarmed_identity;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "retry then success" `Quick
            test_fleet_retry_then_success;
          Alcotest.test_case "quarantine diagnostics" `Quick
            test_fleet_quarantine_diagnostics;
          Alcotest.test_case "inject determinism across domains" `Quick
            test_fleet_inject_determinism;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "catalog sweep contained" `Quick
            test_campaign_contained;
        ] );
    ]
